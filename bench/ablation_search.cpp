// Ablation: CAFQA's search-strategy choice (paper Section 5). The paper
// selects Bayesian optimization with a random-forest surrogate and a
// greedy acquisition over the discrete Clifford space; this bench runs
// every discrete strategy registered in the optimizer registry at an
// identical evaluation budget and emits one comparison table (best
// energy error, evaluations to chemical accuracy, wall time) per
// molecule — so the paper's search ablation reproduces with one binary,
// and a newly registered strategy joins the comparison automatically.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "core/evaluator.hpp"
#include "opt/optimizer_registry.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

/** Budgets per strategy: "bayes" splits the budget into warm-up and
 *  model-guided halves (the paper's setup); every other strategy gets
 *  the same total through the stopping criteria. */
OptimizerConfig
strategy_config(const std::string& kind, std::size_t budget,
                std::uint64_t seed)
{
    OptimizerConfig config = optimizer_config(kind);
    config.seed = seed;
    config.bayes.warmup = budget / 2;
    config.bayes.iterations = budget - budget / 2;
    config.anneal.initial_temperature = 0.5;
    config.anneal.final_temperature = 1e-3;
    return config;
}

void
compare_on(const std::string& molecule, double bond, std::uint64_t seed,
           std::size_t budget)
{
    const auto problem = problems::make_problem(
        "molecule:" + molecule + "?bond=" + format_real(bond));
    CliffordEvaluator evaluator(problem.ansatz);
    auto objective_fn = [&](const std::vector<int>& steps) {
        evaluator.prepare(steps);
        return problem.objective.evaluate(evaluator);
    };
    const DiscreteSpace space = clifford_search_space(problem.ansatz);
    const double exact = exact_energy(problem.hamiltonian());

    Table table(molecule + " @ " + Table::num(bond, 2) + " A, " +
                std::to_string(budget) + "-evaluation budget, space 10^" +
                Table::num(space.log10_size(), 1));
    table.set_header({"Strategy", "Error(Ha)", "EvalsToChemAcc",
                      "EvalsToBest", "Stop", "Wall(ms)"});

    StoppingCriteria criteria;
    criteria.max_evaluations = budget;

    for (const std::string& kind : registered_discrete_optimizers()) {
        const auto optimizer =
            make_discrete_optimizer(strategy_config(kind, budget, seed));
        const auto start = std::chrono::steady_clock::now();
        const OptimizeOutcome outcome =
            optimizer->minimize(objective_fn, space, criteria);
        const std::chrono::duration<double, std::milli> wall =
            std::chrono::steady_clock::now() - start;

        // First evaluation whose running best is chemically accurate.
        std::string to_accuracy = "-";
        for (std::size_t i = 0; i < outcome.best_trace.size(); ++i) {
            if (outcome.best_trace[i] <= exact + chemical_accuracy) {
                to_accuracy = std::to_string(i + 1);
                break;
            }
        }

        table.add_row(
            {kind,
             Table::sci(std::max(outcome.best_value - exact, 1e-10), 2),
             to_accuracy, std::to_string(outcome.evaluations_to_best),
             std::string(to_string(outcome.stop_reason)),
             Table::num(wall.count(), 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
print_ablation()
{
    banner("Ablation: search strategy over the Clifford space (Section 5)");
    compare_on("H2", 2.2, 71, pick(300, 1500));
    compare_on("LiH", 3.4, 71, pick(400, 2000));
    std::cout << "Expected trend (paper Section 5): the RF-surrogate BO"
                 " matches or beats the unguided baselines at equal"
                 " budgets, most visibly on the larger LiH space where"
                 " exhaustive enumeration is hopeless.\n";
}

void
BM_SurrogatePredict(benchmark::State& state)
{
    Rng rng(3);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
        std::vector<double> row(40);
        for (auto& v : row) {
            v = static_cast<double>(rng.uniform_int(0, 3));
        }
        x.push_back(std::move(row));
        y.push_back(rng.normal());
    }
    RandomForest forest;
    forest.fit(x, y, 1, {});
    for (auto _ : state) {
        benchmark::DoNotOptimize(forest.predict(x[7]));
    }
}
BENCHMARK(BM_SurrogatePredict);

} // namespace

int
main(int argc, char** argv)
{
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
