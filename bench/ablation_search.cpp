// Ablation: CAFQA's search-strategy choice (paper Section 5). The paper
// selects Bayesian optimization with a random-forest surrogate and a
// greedy acquisition over the discrete Clifford space; this bench
// compares that choice against plain random search and simulated
// annealing at an identical evaluation budget.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/evaluator.hpp"
#include "opt/simulated_annealing.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

struct StrategyResult
{
    double best = 0.0;
    std::size_t evals_to_best = 0;
};

void
compare_on(const std::string& molecule, double bond, std::uint64_t seed,
           Table& table)
{
    const auto system = problems::make_molecular_system(molecule, bond);
    const VqaObjective objective = problems::make_objective(system);
    CliffordEvaluator evaluator(system.ansatz);
    auto objective_fn = [&](const std::vector<int>& steps) {
        evaluator.prepare(steps);
        return objective.evaluate(evaluator);
    };
    const DiscreteSpace space = clifford_search_space(system.ansatz);
    const std::size_t budget = pick(400, 2000);

    // Bayesian optimization (the paper's choice), warmup = budget/2.
    BayesOptOptions bo;
    bo.warmup = budget / 2;
    bo.iterations = budget - bo.warmup;
    bo.seed = seed;
    const BayesOptResult bayes = bayes_opt_minimize(objective_fn, space, bo);

    // Random search: warm-up phase only.
    BayesOptOptions random_only;
    random_only.warmup = budget;
    random_only.iterations = 0;
    random_only.seed = seed;
    const BayesOptResult random_result =
        bayes_opt_minimize(objective_fn, space, random_only);

    // Simulated annealing at the same budget.
    const BayesOptResult annealed = simulated_annealing_minimize(
        objective_fn, space,
        {.iterations = budget, .initial_temperature = 0.5,
         .final_temperature = 1e-3, .seed = seed,
         .mutations_per_step = 1});

    const double exact = exact_energy(system.hamiltonian);
    auto err = [exact](double e) {
        return Table::sci(std::max(e - exact, 1e-10), 2);
    };
    table.add_row({molecule + " @ " + Table::num(bond, 2),
                   "BO (RF+greedy)", err(bayes.best_value),
                   std::to_string(bayes.evaluations_to_best)});
    table.add_row({"", "Random search", err(random_result.best_value),
                   std::to_string(random_result.evaluations_to_best)});
    table.add_row({"", "Simulated annealing", err(annealed.best_value),
                   std::to_string(annealed.evaluations_to_best)});
}

void
print_ablation()
{
    banner("Ablation: search strategy over the Clifford space (Section 5)");
    Table table("Energy error vs exact at equal evaluation budgets");
    table.set_header({"Problem", "Strategy", "Error(Ha)", "EvalsToBest"});
    compare_on("LiH", 3.4, 71, table);
    compare_on("H6", 2.4, 72, table);
    table.print(std::cout);
    std::cout << "\nExpected trend (paper Section 5): the RF-surrogate BO"
                 " matches or beats unguided baselines, most visibly on"
                 " the larger H6 space.\n";
}

void
BM_SurrogatePredict(benchmark::State& state)
{
    Rng rng(3);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
        std::vector<double> row(40);
        for (auto& v : row) {
            v = static_cast<double>(rng.uniform_int(0, 3));
        }
        x.push_back(std::move(row));
        y.push_back(rng.normal());
    }
    RandomForest forest;
    forest.fit(x, y, 1, {});
    for (auto _ : state) {
        benchmark::DoNotOptimize(forest.predict(x[7]));
    }
}
BENCHMARK(BM_SurrogatePredict);

} // namespace

int
main(int argc, char** argv)
{
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
