// Effect of the memoizing evaluation cache (core/caching_backend.hpp)
// on the discrete CAFQA search: for each molecule and search strategy,
// run the identical pipeline with the cache off and on and report hit
// rate, backend evaluations saved (state preparations avoided), and the
// wall-time reduction. The cached run is a pure memoizer
// (`CacheOptions::unique_budget` off), so both runs follow the same
// trajectory and must land on exactly the same best energy — the last
// column checks it.
//
// "bayes" deduplicates its own candidates, so its hit rate is near
// zero by construction; "anneal" re-visits constantly and shows the
// cache's real effect. Microbenchmark kernels at the end time a cache
// hit against a full stabilizer re-preparation.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/caching_backend.hpp"
#include "core/evaluator.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

struct RunResult
{
    double best_energy = 0.0;
    std::size_t evaluations = 0;
    double seconds = 0.0;
    std::optional<CacheStats> cache;
};

RunResult
run_search(const problems::MolecularSystem& system,
           const std::string& search_kind, bool cached)
{
    PipelineConfig config = molecular_pipeline_config(system, 2024);
    config.search.warmup = pick(120, 1000);
    config.search.iterations = pick(160, 1000);
    config.search_optimizer = optimizer_config(search_kind);
    if (cached) {
        config.cache.enabled = true;
    }

    CafqaPipeline pipeline(std::move(config));
    RunResult result;
    pipeline.set_observer([&](const PipelineEvent& event) {
        if (event.event == PipelineEvent::Kind::StageEnd &&
            event.cache != nullptr) {
            result.cache = *event.cache;
        }
    });

    const auto start = std::chrono::steady_clock::now();
    const CafqaResult& search = pipeline.run_clifford_search();
    result.seconds = seconds_since(start);
    result.best_energy = search.best_energy;
    result.evaluations = search.history.size();
    return result;
}

void
print_cache_effect()
{
    banner("Memoizing-cache effect on the discrete CAFQA search");

    const std::pair<const char*, double> molecules[] = {
        {"H2", 2.2}, {"LiH", 2.4}, {"H2O", 4.0}};
    const char* strategies[] = {"bayes", "anneal"};

    Table table("Cache off vs on, identical trajectories "
                "(EvalsSaved = state preparations avoided)");
    table.set_header({"Molecule", "Search", "Evals", "HitRate(%)",
                      "EvalsSaved", "T_off(s)", "T_on(s)", "Saved(%)",
                      "EnergyMatch"});

    for (const auto& [name, bond] : molecules) {
        const auto system = problems::make_molecular_system(name, bond);
        for (const char* strategy : strategies) {
            const RunResult off = run_search(system, strategy, false);
            const RunResult on = run_search(system, strategy, true);

            // The uncached stage prepares once per recorded evaluation
            // plus once for the final energy read-out.
            const std::size_t preps_off = off.evaluations + 1;
            const std::size_t preps_on =
                on.cache ? on.cache->preparations : preps_off;
            const std::size_t saved =
                preps_off > preps_on ? preps_off - preps_on : 0;
            const double hit_rate =
                on.cache ? 100.0 * on.cache->hit_rate() : 0.0;
            const double time_saved = off.seconds > 1e-12
                ? 100.0 * (off.seconds - on.seconds) / off.seconds
                : 0.0;
            const bool match = off.best_energy == on.best_energy;

            table.add_row({name, strategy,
                           std::to_string(off.evaluations),
                           Table::num(hit_rate, 1), std::to_string(saved),
                           Table::num(off.seconds, 3),
                           Table::num(on.seconds, 3),
                           Table::num(time_saved, 1),
                           match ? "yes" : "NO"});
        }
    }
    table.print(std::cout);
    std::cout << "(bayes deduplicates its own proposals, so its hit rate "
                 "is structurally ~0;\n annealing's re-visits are where "
                 "memoization pays off)\n\n";
}

void
BM_CliffordEvalUncached(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("LiH", 2.4);
    static const PauliSum& op = system.hamiltonian;
    CliffordEvaluator backend(system.ansatz);
    const std::vector<int> steps(system.ansatz.num_params(), 1);
    for (auto _ : state) {
        backend.prepare(steps);
        benchmark::DoNotOptimize(backend.expectation(op));
    }
}
BENCHMARK(BM_CliffordEvalUncached);

void
BM_CliffordEvalCachedHit(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("LiH", 2.4);
    static const PauliSum& op = system.hamiltonian;
    CacheOptions options;
    options.enabled = true;
    CachingDiscreteBackend backend(
        std::make_unique<CliffordEvaluator>(system.ansatz), options);
    const std::vector<int> steps(system.ansatz.num_params(), 1);
    backend.prepare(steps);
    benchmark::DoNotOptimize(backend.expectation(op)); // warm the entry
    for (auto _ : state) {
        backend.prepare(steps);
        benchmark::DoNotOptimize(backend.expectation(op));
    }
}
BENCHMARK(BM_CliffordEvalCachedHit);

} // namespace

int
main(int argc, char** argv)
{
    print_cache_effect();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
