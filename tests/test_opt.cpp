// Tests for the optimization substrate: Nelder-Mead, SPSA, regression
// trees/forests, and the discrete Bayesian optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "opt/bayes_opt.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/simulated_annealing.hpp"
#include "opt/spsa.hpp"

namespace cafqa {
namespace {

TEST(NelderMead, Quadratic)
{
    auto f = [](const std::vector<double>& x) {
        return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
    };
    const OptimizeResult r = nelder_mead(f, {0.0, 0.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], -2.0, 1e-5);
    EXPECT_LT(r.f, 1e-9);
}

TEST(NelderMead, Rosenbrock)
{
    auto f = [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    const OptimizeResult r = nelder_mead(
        f, {-1.2, 1.0}, {.max_evaluations = 5000, .f_tolerance = 1e-14,
                         .initial_step = 0.5});
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(Spsa, NoiselessQuadratic)
{
    auto f = [](const std::vector<double>& x) {
        double s = 0.0;
        for (const double v : x) {
            s += (v - 0.5) * (v - 0.5);
        }
        return s;
    };
    const SpsaResult r = spsa_minimize(f, {3.0, -2.0, 1.0},
                                       {.iterations = 800,
                                        .a = 0.5,
                                        .c = 0.1,
                                        .alpha = 0.602,
                                        .gamma = 0.101,
                                        .stability = 10.0,
                                        .seed = 5});
    EXPECT_LT(r.f, 1e-2);
    EXPECT_EQ(r.trace.size(), 800u);
}

TEST(Spsa, NoisyObjectiveStillDescends)
{
    Rng noise(3);
    auto f = [&](const std::vector<double>& x) {
        double s = 0.0;
        for (const double v : x) {
            s += v * v;
        }
        return s + noise.normal(0.0, 0.01);
    };
    const SpsaResult r = spsa_minimize(f, {2.0, 2.0}, {.iterations = 500});
    EXPECT_LT(r.f, 0.5);
}

TEST(DecisionTree, FitsPiecewiseConstantExactly)
{
    // y = 1 if x0 <= 0.5 else 3.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 32; ++i) {
        const double v = i / 31.0;
        x.push_back({v});
        y.push_back(v <= 0.5 ? 1.0 : 3.0);
    }
    DecisionTree tree;
    Rng rng(1);
    tree.fit(x, y, rng, {.max_depth = 4, .min_samples_leaf = 1,
                         .feature_subset = 0});
    EXPECT_NEAR(tree.predict({0.2}), 1.0, 1e-12);
    EXPECT_NEAR(tree.predict({0.9}), 3.0, 1e-12);
}

TEST(DecisionTree, DiscreteFeatures)
{
    // y = x0 XOR x1 on {0,1}^2 — needs depth 2.
    std::vector<std::vector<double>> x = {
        {0, 0}, {0, 1}, {1, 0}, {1, 1},
        {0, 0}, {0, 1}, {1, 0}, {1, 1}};
    std::vector<double> y = {0, 1, 1, 0, 0, 1, 1, 0};
    DecisionTree tree;
    Rng rng(2);
    tree.fit(x, y, rng, {.max_depth = 4, .min_samples_leaf = 1,
                         .feature_subset = 0});
    EXPECT_NEAR(tree.predict({0, 1}), 1.0, 1e-12);
    EXPECT_NEAR(tree.predict({1, 1}), 0.0, 1e-12);
}

TEST(RandomForest, PredictsSmoothFunction)
{
    Rng data_rng(7);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 400; ++i) {
        const double a = data_rng.uniform_real(0, 3);
        const double b = data_rng.uniform_real(0, 3);
        x.push_back({a, b});
        y.push_back(a * a + b);
    }
    RandomForest forest;
    forest.fit(x, y, 42, {.num_trees = 40, .tree = {}, .bootstrap_fraction = 1.0});
    double mse = 0.0;
    for (int i = 0; i < 50; ++i) {
        const double a = 0.05 + (i % 10) * 0.3;
        const double b = 0.05 + (i / 10) * 0.6;
        const double pred = forest.predict({a, b});
        mse += (pred - (a * a + b)) * (pred - (a * a + b));
    }
    EXPECT_LT(mse / 50.0, 0.5);
}

TEST(RandomForest, VarianceIsNonnegativeAndInformative)
{
    std::vector<std::vector<double>> x = {{0}, {1}, {2}, {3}};
    std::vector<double> y = {0, 1, 2, 3};
    RandomForest forest;
    forest.fit(x, y, 9, {.num_trees = 16, .tree = {.max_depth = 3,
                                                   .min_samples_leaf = 1,
                                                   .feature_subset = 0},
                         .bootstrap_fraction = 1.0});
    const ForestPrediction p = forest.predict_with_variance({1.5});
    EXPECT_GE(p.variance, 0.0);
    EXPECT_GT(p.mean, 0.0);
    EXPECT_LT(p.mean, 3.0);
}

TEST(BayesOpt, FindsDiscreteOptimum)
{
    // Separable objective over {0..3}^6, optimum at all-2s.
    auto f = [](const std::vector<int>& config) {
        double s = 0.0;
        for (const int v : config) {
            s += (v - 2) * (v - 2);
        }
        return s;
    };
    DiscreteSpace space;
    space.cardinalities.assign(6, 4);
    const BayesOptResult r = bayes_opt_minimize(
        f, space, {.warmup = 40, .iterations = 120, .seed = 3});
    EXPECT_EQ(r.best_value, 0.0);
    for (const int v : r.best_config) {
        EXPECT_EQ(v, 2);
    }
}

TEST(BayesOpt, TraceIsMonotoneAndConsistent)
{
    auto f = [](const std::vector<int>& config) {
        return static_cast<double>(config[0] * 7 + config[1]);
    };
    DiscreteSpace space;
    space.cardinalities = {4, 4};
    const BayesOptResult r = bayes_opt_minimize(
        f, space, {.warmup = 8, .iterations = 20, .seed = 1});
    ASSERT_EQ(r.best_trace.size(), r.history.size());
    for (std::size_t i = 1; i < r.best_trace.size(); ++i) {
        EXPECT_LE(r.best_trace[i], r.best_trace[i - 1] + 1e-15);
        EXPECT_LE(r.best_trace[i], r.history[i] + 1e-15);
    }
    EXPECT_GE(r.evaluations_to_best, 1u);
    EXPECT_NEAR(r.history[r.evaluations_to_best - 1], r.best_value, 1e-15);
}

TEST(BayesOpt, BeatsShortRandomSearchOnStructuredProblem)
{
    // A correlated objective where model guidance should help: count
    // matches to a hidden pattern, with interactions between neighbors.
    const std::vector<int> hidden = {1, 3, 0, 2, 1, 3, 0, 2, 1, 3};
    auto f = [&](const std::vector<int>& config) {
        double s = 0.0;
        for (std::size_t i = 0; i < config.size(); ++i) {
            s += std::abs(config[i] - hidden[i]);
            if (i > 0 && config[i] == config[i - 1]) {
                s += 0.5;
            }
        }
        return s;
    };
    DiscreteSpace space;
    space.cardinalities.assign(10, 4);

    const BayesOptResult guided = bayes_opt_minimize(
        f, space, {.warmup = 60, .iterations = 240, .seed = 11});
    const BayesOptResult random_only = bayes_opt_minimize(
        f, space, {.warmup = 300, .iterations = 0, .seed = 11});
    EXPECT_LT(guided.best_value, random_only.best_value + 1e-12);
}

TEST(BayesOpt, StallLimitStopsEarly)
{
    auto f = [](const std::vector<int>& config) {
        return static_cast<double>(config[0]);
    };
    DiscreteSpace space;
    space.cardinalities = {2};
    const BayesOptResult r = bayes_opt_minimize(
        f, space,
        {.warmup = 2, .iterations = 500, .seed = 1, .stall_limit = 5});
    EXPECT_LT(r.history.size(), 60u);
    EXPECT_EQ(r.best_value, 0.0);
}

TEST(BayesOpt, SeedConfigsAreEvaluatedFirst)
{
    auto f = [](const std::vector<int>& config) {
        return static_cast<double>(config[0] + config[1]);
    };
    DiscreteSpace space;
    space.cardinalities = {4, 4};
    BayesOptOptions options{.warmup = 5, .iterations = 5, .seed = 2};
    options.seed_configs = {{0, 0}};
    const BayesOptResult r = bayes_opt_minimize(f, space, options);
    EXPECT_EQ(r.best_value, 0.0);
    EXPECT_EQ(r.evaluations_to_best, 1u);
    EXPECT_NEAR(r.history.front(), 0.0, 1e-15);
}

TEST(BayesOpt, SeedConfigValidation)
{
    auto f = [](const std::vector<int>&) { return 0.0; };
    DiscreteSpace space;
    space.cardinalities = {4, 4};
    BayesOptOptions options{.warmup = 2, .iterations = 2, .seed = 2};
    options.seed_configs = {{0, 9}};
    EXPECT_THROW(bayes_opt_minimize(f, space, options),
                 std::invalid_argument);
}

TEST(SimulatedAnnealing, FindsDiscreteOptimum)
{
    auto f = [](const std::vector<int>& config) {
        double s = 0.0;
        for (const int v : config) {
            s += (v - 1) * (v - 1);
        }
        return s;
    };
    DiscreteSpace space;
    space.cardinalities.assign(6, 4);
    const BayesOptResult r = simulated_annealing_minimize(
        f, space,
        {.iterations = 2000, .initial_temperature = 2.0,
         .final_temperature = 1e-3, .seed = 4, .mutations_per_step = 1});
    EXPECT_EQ(r.best_value, 0.0);
    EXPECT_EQ(r.history.size(), 2000u);
    // Trace is a running minimum.
    for (std::size_t i = 1; i < r.best_trace.size(); ++i) {
        EXPECT_LE(r.best_trace[i], r.best_trace[i - 1] + 1e-15);
    }
}

TEST(BayesOpt, SpaceSizeAccounting)
{
    DiscreteSpace space;
    space.cardinalities.assign(48, 4);
    EXPECT_NEAR(space.log10_size(), 48 * std::log10(4.0), 1e-12);
}

} // namespace
} // namespace cafqa
