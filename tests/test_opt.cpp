// Tests for the optimization substrate: the Optimizer interfaces and
// registry, a contract suite run over every registered optimizer,
// Nelder-Mead, SPSA, regression trees/forests, the discrete Bayesian
// optimizer, and the unguided baselines.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <thread>

#include "opt/bayes_opt.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/optimizer_registry.hpp"
#include "opt/search_baselines.hpp"
#include "opt/simulated_annealing.hpp"
#include "opt/spsa.hpp"

namespace cafqa {
namespace {

TEST(NelderMead, Quadratic)
{
    auto f = [](const std::vector<double>& x) {
        return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
    };
    const OptimizeResult r = nelder_mead(f, {0.0, 0.0});
    EXPECT_NEAR(r.best_x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.best_x[1], -2.0, 1e-5);
    EXPECT_LT(r.best_value, 1e-9);
    EXPECT_EQ(r.stop_reason, StopReason::Converged);
}

TEST(NelderMead, Rosenbrock)
{
    auto f = [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    const OptimizeResult r = nelder_mead(
        f, {-1.2, 1.0}, {.max_evaluations = 5000, .f_tolerance = 1e-14,
                         .initial_step = 0.5});
    EXPECT_NEAR(r.best_x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.best_x[1], 1.0, 1e-3);
}

TEST(Spsa, NoiselessQuadratic)
{
    auto f = [](const std::vector<double>& x) {
        double s = 0.0;
        for (const double v : x) {
            s += (v - 0.5) * (v - 0.5);
        }
        return s;
    };
    const SpsaResult r = spsa_minimize(f, {3.0, -2.0, 1.0},
                                       {.iterations = 800,
                                        .a = 0.5,
                                        .c = 0.1,
                                        .alpha = 0.602,
                                        .gamma = 0.101,
                                        .stability = 10.0,
                                        .seed = 5});
    EXPECT_LT(r.best_value, 1e-2);
    // Start-point value plus one recorded value per iteration; the +/-
    // probes are counted but not recorded.
    EXPECT_EQ(r.history.size(), 801u);
    EXPECT_EQ(r.evaluations, 1u + 3u * 800u);
}

TEST(Spsa, NoisyObjectiveStillDescends)
{
    Rng noise(3);
    auto f = [&](const std::vector<double>& x) {
        double s = 0.0;
        for (const double v : x) {
            s += v * v;
        }
        return s + noise.normal(0.0, 0.01);
    };
    const SpsaResult r = spsa_minimize(f, {2.0, 2.0}, {.iterations = 500});
    EXPECT_LT(r.best_value, 0.5);
}

TEST(DecisionTree, FitsPiecewiseConstantExactly)
{
    // y = 1 if x0 <= 0.5 else 3.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 32; ++i) {
        const double v = i / 31.0;
        x.push_back({v});
        y.push_back(v <= 0.5 ? 1.0 : 3.0);
    }
    DecisionTree tree;
    Rng rng(1);
    tree.fit(x, y, rng, {.max_depth = 4, .min_samples_leaf = 1,
                         .feature_subset = 0});
    EXPECT_NEAR(tree.predict({0.2}), 1.0, 1e-12);
    EXPECT_NEAR(tree.predict({0.9}), 3.0, 1e-12);
}

TEST(DecisionTree, DiscreteFeatures)
{
    // y = x0 XOR x1 on {0,1}^2 — needs depth 2.
    std::vector<std::vector<double>> x = {
        {0, 0}, {0, 1}, {1, 0}, {1, 1},
        {0, 0}, {0, 1}, {1, 0}, {1, 1}};
    std::vector<double> y = {0, 1, 1, 0, 0, 1, 1, 0};
    DecisionTree tree;
    Rng rng(2);
    tree.fit(x, y, rng, {.max_depth = 4, .min_samples_leaf = 1,
                         .feature_subset = 0});
    EXPECT_NEAR(tree.predict({0, 1}), 1.0, 1e-12);
    EXPECT_NEAR(tree.predict({1, 1}), 0.0, 1e-12);
}

TEST(RandomForest, PredictsSmoothFunction)
{
    Rng data_rng(7);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 400; ++i) {
        const double a = data_rng.uniform_real(0, 3);
        const double b = data_rng.uniform_real(0, 3);
        x.push_back({a, b});
        y.push_back(a * a + b);
    }
    RandomForest forest;
    forest.fit(x, y, 42, {.num_trees = 40, .tree = {}, .bootstrap_fraction = 1.0});
    double mse = 0.0;
    for (int i = 0; i < 50; ++i) {
        const double a = 0.05 + (i % 10) * 0.3;
        const double b = 0.05 + (i / 10) * 0.6;
        const double pred = forest.predict({a, b});
        mse += (pred - (a * a + b)) * (pred - (a * a + b));
    }
    EXPECT_LT(mse / 50.0, 0.5);
}

TEST(RandomForest, VarianceIsNonnegativeAndInformative)
{
    std::vector<std::vector<double>> x = {{0}, {1}, {2}, {3}};
    std::vector<double> y = {0, 1, 2, 3};
    RandomForest forest;
    forest.fit(x, y, 9, {.num_trees = 16, .tree = {.max_depth = 3,
                                                   .min_samples_leaf = 1,
                                                   .feature_subset = 0},
                         .bootstrap_fraction = 1.0});
    const ForestPrediction p = forest.predict_with_variance({1.5});
    EXPECT_GE(p.variance, 0.0);
    EXPECT_GT(p.mean, 0.0);
    EXPECT_LT(p.mean, 3.0);
}

TEST(BayesOpt, FindsDiscreteOptimum)
{
    // Separable objective over {0..3}^6, optimum at all-2s.
    auto f = [](const std::vector<int>& config) {
        double s = 0.0;
        for (const int v : config) {
            s += (v - 2) * (v - 2);
        }
        return s;
    };
    DiscreteSpace space;
    space.cardinalities.assign(6, 4);
    const BayesOptResult r = bayes_opt_minimize(
        f, space, {.warmup = 40, .iterations = 120, .seed = 3});
    EXPECT_EQ(r.best_value, 0.0);
    for (const int v : r.best_config) {
        EXPECT_EQ(v, 2);
    }
}

TEST(BayesOpt, TraceIsMonotoneAndConsistent)
{
    auto f = [](const std::vector<int>& config) {
        return static_cast<double>(config[0] * 7 + config[1]);
    };
    DiscreteSpace space;
    space.cardinalities = {4, 4};
    const BayesOptResult r = bayes_opt_minimize(
        f, space, {.warmup = 8, .iterations = 20, .seed = 1});
    ASSERT_EQ(r.best_trace.size(), r.history.size());
    for (std::size_t i = 1; i < r.best_trace.size(); ++i) {
        EXPECT_LE(r.best_trace[i], r.best_trace[i - 1] + 1e-15);
        EXPECT_LE(r.best_trace[i], r.history[i] + 1e-15);
    }
    EXPECT_GE(r.evaluations_to_best, 1u);
    EXPECT_NEAR(r.history[r.evaluations_to_best - 1], r.best_value, 1e-15);
}

TEST(BayesOpt, BeatsShortRandomSearchOnStructuredProblem)
{
    // A correlated objective where model guidance should help: count
    // matches to a hidden pattern, with interactions between neighbors.
    const std::vector<int> hidden = {1, 3, 0, 2, 1, 3, 0, 2, 1, 3};
    auto f = [&](const std::vector<int>& config) {
        double s = 0.0;
        for (std::size_t i = 0; i < config.size(); ++i) {
            s += std::abs(config[i] - hidden[i]);
            if (i > 0 && config[i] == config[i - 1]) {
                s += 0.5;
            }
        }
        return s;
    };
    DiscreteSpace space;
    space.cardinalities.assign(10, 4);

    const BayesOptResult guided = bayes_opt_minimize(
        f, space, {.warmup = 60, .iterations = 240, .seed = 11});
    const BayesOptResult random_only = bayes_opt_minimize(
        f, space, {.warmup = 300, .iterations = 0, .seed = 11});
    EXPECT_LT(guided.best_value, random_only.best_value + 1e-12);
}

TEST(BayesOpt, StallLimitStopsEarly)
{
    auto f = [](const std::vector<int>& config) {
        return static_cast<double>(config[0]);
    };
    DiscreteSpace space;
    space.cardinalities = {2};
    const BayesOptResult r = bayes_opt_minimize(
        f, space,
        {.warmup = 2, .iterations = 500, .seed = 1, .stall_limit = 5});
    EXPECT_LT(r.history.size(), 60u);
    EXPECT_EQ(r.best_value, 0.0);
    EXPECT_EQ(r.stop_reason, StopReason::Stalled);
}

TEST(BayesOpt, SeedConfigsAreEvaluatedFirst)
{
    auto f = [](const std::vector<int>& config) {
        return static_cast<double>(config[0] + config[1]);
    };
    DiscreteSpace space;
    space.cardinalities = {4, 4};
    BayesOptOptions options{.warmup = 5, .iterations = 5, .seed = 2};
    options.seed_configs = {{0, 0}};
    const BayesOptResult r = bayes_opt_minimize(f, space, options);
    EXPECT_EQ(r.best_value, 0.0);
    EXPECT_EQ(r.evaluations_to_best, 1u);
    EXPECT_NEAR(r.history.front(), 0.0, 1e-15);
}

TEST(BayesOpt, SeedConfigValidation)
{
    auto f = [](const std::vector<int>&) { return 0.0; };
    DiscreteSpace space;
    space.cardinalities = {4, 4};
    BayesOptOptions options{.warmup = 2, .iterations = 2, .seed = 2};
    options.seed_configs = {{0, 9}};
    EXPECT_THROW(bayes_opt_minimize(f, space, options),
                 std::invalid_argument);
}

TEST(BayesOpt, WarmupNeverDispatchesDuplicateConfigurations)
{
    // On a space small enough that the bounded dedup retries can run
    // out, the warm-up used to dispatch the stale duplicate anyway —
    // evaluating it twice and double-counting it against the budget.
    // Now the exhausted draw is dropped: every configuration is
    // evaluated at most once, in both the serial and batched paths.
    DiscreteSpace space;
    space.cardinalities = {2, 2}; // 4 configurations, warmup 32
    BayesOptOptions options;
    options.warmup = 32;
    options.iterations = 0;
    options.seed = 21;

    auto run = [&](bool batched) {
        std::map<std::vector<int>, int> counts;
        auto objective = [&](const std::vector<int>& config) {
            ++counts[config];
            return static_cast<double>(config[0] * 2 + config[1]);
        };
        SearchContext context;
        if (batched) {
            context.batch =
                [&](const std::vector<std::vector<int>>& block) {
                    std::vector<double> values;
                    values.reserve(block.size());
                    for (const auto& config : block) {
                        values.push_back(objective(config));
                    }
                    return values;
                };
        }
        BayesOptimizer optimizer(options);
        const OptimizeOutcome outcome =
            optimizer.minimize(objective, space, {}, context);
        for (const auto& [config, count] : counts) {
            EXPECT_EQ(count, 1) << "config evaluated " << count
                                << " times in "
                                << (batched ? "batched" : "serial")
                                << " warm-up";
        }
        EXPECT_LE(outcome.evaluations, 4u);
        return outcome;
    };

    const OptimizeOutcome serial = run(false);
    const OptimizeOutcome batched = run(true);
    // The batched path must still mirror the serial trajectory exactly.
    EXPECT_EQ(serial.history, batched.history);
    EXPECT_EQ(serial.best_config, batched.best_config);
}

TEST(SimulatedAnnealing, FindsDiscreteOptimum)
{
    auto f = [](const std::vector<int>& config) {
        double s = 0.0;
        for (const int v : config) {
            s += (v - 1) * (v - 1);
        }
        return s;
    };
    DiscreteSpace space;
    space.cardinalities.assign(6, 4);
    const OptimizeOutcome r = simulated_annealing_minimize(
        f, space,
        {.iterations = 2000, .initial_temperature = 2.0,
         .final_temperature = 1e-3, .seed = 4, .mutations_per_step = 1});
    EXPECT_EQ(r.best_value, 0.0);
    EXPECT_EQ(r.history.size(), 2000u);
    // Trace is a running minimum.
    for (std::size_t i = 1; i < r.best_trace.size(); ++i) {
        EXPECT_LE(r.best_trace[i], r.best_trace[i - 1] + 1e-15);
    }
}

TEST(BayesOpt, SpaceSizeAccounting)
{
    DiscreteSpace space;
    space.cardinalities.assign(48, 4);
    EXPECT_NEAR(space.log10_size(), 48 * std::log10(4.0), 1e-12);
}

TEST(ExhaustiveSearch, EnumeratesWholeSpaceAscending)
{
    auto f = [](const std::vector<int>& config) {
        return static_cast<double>(config[0] + 10 * config[1]);
    };
    DiscreteSpace space;
    space.cardinalities = {3, 2};
    ExhaustiveOptimizer optimizer;
    const OptimizeOutcome r = optimizer.minimize(f, space);
    EXPECT_EQ(r.evaluations, 6u);
    EXPECT_EQ(r.stop_reason, StopReason::SpaceExhausted);
    EXPECT_EQ(r.best_value, 0.0);
    EXPECT_EQ(r.best_config, (std::vector<int>{0, 0}));
    // Ascending odometer order: first coordinate fastest.
    EXPECT_EQ(r.history,
              (std::vector<double>{0, 1, 2, 10, 11, 12}));
}

TEST(ExhaustiveSearch, RefusesUnboundedHugeSpace)
{
    DiscreteSpace space;
    space.cardinalities.assign(48, 4);
    ExhaustiveOptimizer optimizer;
    auto f = [](const std::vector<int>&) { return 0.0; };
    EXPECT_THROW(optimizer.minimize(f, space), std::invalid_argument);
    // A budget makes the same space legal.
    StoppingCriteria criteria;
    criteria.max_evaluations = 10;
    const OptimizeOutcome r = optimizer.minimize(f, space, criteria);
    EXPECT_EQ(r.evaluations, 10u);
}

TEST(RandomSearch, BatchPathMatchesSerial)
{
    auto f = [](const std::vector<int>& config) {
        return static_cast<double>(config[0] * 3 + config[1]);
    };
    DiscreteSpace space;
    space.cardinalities = {4, 4, 4};
    RandomSearchOptions options{.samples = 30, .seed = 17};

    RandomSearchOptimizer serial(options);
    const OptimizeOutcome a = serial.minimize(f, space);

    SearchContext context;
    context.batch = [&](const std::vector<std::vector<int>>& block) {
        std::vector<double> values;
        values.reserve(block.size());
        for (const auto& config : block) {
            values.push_back(f(config));
        }
        return values;
    };
    RandomSearchOptimizer batched(options);
    const OptimizeOutcome b = batched.minimize(f, space, {}, context);

    EXPECT_EQ(a.history, b.history);
    EXPECT_EQ(a.best_config, b.best_config);
}

// ---------------------------------------------------------------------
// Contract suite: every registered optimizer, resolved through the
// registry, must recover a planted optimum, honor the stopping
// criteria, keep a consistent monotone trace, evaluate seeds first,
// and be deterministic under a fixed seed.
// ---------------------------------------------------------------------

/** Planted optimum at {1, 3, 0} on {0..3}^3 (64 configurations). */
const std::vector<int> kPlanted = {1, 3, 0};

double
planted_objective(const std::vector<int>& config)
{
    double s = 0.0;
    for (std::size_t i = 0; i < config.size(); ++i) {
        s += std::abs(config[i] - kPlanted[i]);
    }
    return s;
}

DiscreteSpace
planted_space()
{
    DiscreteSpace space;
    space.cardinalities.assign(3, 4);
    return space;
}

/** Budgets sized for the tiny contract problems. */
OptimizerConfig
contract_config(const std::string& kind)
{
    OptimizerConfig config = optimizer_config(kind);
    config.bayes.warmup = 40;
    config.bayes.iterations = 100;
    config.anneal.iterations = 300;
    config.anneal.initial_temperature = 2.0;
    config.random.samples = 300;
    config.nelder_mead.max_evaluations = 600;
    config.spsa = {.iterations = 500,
                   .a = 0.5,
                   .c = 0.1,
                   .alpha = 0.602,
                   .gamma = 0.101,
                   .stability = 10.0,
                   .seed = 5};
    return config;
}

void
expect_trace_consistent(const OptimizeOutcome& r)
{
    ASSERT_FALSE(r.history.empty());
    ASSERT_EQ(r.best_trace.size(), r.history.size());
    for (std::size_t i = 0; i < r.history.size(); ++i) {
        EXPECT_LE(r.best_trace[i],
                  (i ? r.best_trace[i - 1] : r.history[0]) + 1e-15);
        EXPECT_LE(r.best_trace[i], r.history[i] + 1e-15);
    }
    EXPECT_DOUBLE_EQ(r.best_trace.back(), r.best_value);
    EXPECT_GE(r.evaluations, r.history.size());
    ASSERT_GE(r.evaluations_to_best, 1u);
    ASSERT_LE(r.evaluations_to_best, r.history.size());
    EXPECT_DOUBLE_EQ(r.history[r.evaluations_to_best - 1], r.best_value);
}

class DiscreteOptimizerContract
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DiscreteOptimizerContract, RecoversPlantedOptimumWithConsistentTrace)
{
    const auto optimizer =
        make_discrete_optimizer(contract_config(GetParam()));
    const OptimizeOutcome r =
        optimizer->minimize(planted_objective, planted_space());
    EXPECT_EQ(r.best_value, 0.0);
    EXPECT_EQ(r.best_config, kPlanted);
    expect_trace_consistent(r);
}

TEST_P(DiscreteOptimizerContract, RespectsEvaluationBudget)
{
    const auto optimizer =
        make_discrete_optimizer(contract_config(GetParam()));
    StoppingCriteria criteria;
    criteria.max_evaluations = 17;
    const OptimizeOutcome r =
        optimizer->minimize(planted_objective, planted_space(), criteria);
    EXPECT_EQ(r.evaluations, 17u);
    EXPECT_EQ(r.history.size(), 17u);
    EXPECT_EQ(r.stop_reason, StopReason::BudgetExhausted);
}

TEST_P(DiscreteOptimizerContract, TargetValueStopsEarly)
{
    const auto optimizer =
        make_discrete_optimizer(contract_config(GetParam()));
    StoppingCriteria criteria;
    criteria.max_evaluations = 300;
    criteria.target_value = 2.0;
    const OptimizeOutcome r =
        optimizer->minimize(planted_objective, planted_space(), criteria);
    EXPECT_EQ(r.stop_reason, StopReason::TargetReached);
    EXPECT_LE(r.best_value, 2.0);
    EXPECT_LT(r.evaluations, 300u);
}

TEST_P(DiscreteOptimizerContract, SeedConfigsAreEvaluatedFirst)
{
    const auto optimizer =
        make_discrete_optimizer(contract_config(GetParam()));
    SearchContext context;
    context.seed_configs = {kPlanted};
    const OptimizeOutcome r = optimizer->minimize(
        planted_objective, planted_space(), {}, context);
    EXPECT_DOUBLE_EQ(r.history.front(), 0.0);
    EXPECT_EQ(r.evaluations_to_best, 1u);
    EXPECT_EQ(r.best_config, kPlanted);
}

TEST_P(DiscreteOptimizerContract, DeterministicUnderFixedSeed)
{
    const OptimizerConfig config = contract_config(GetParam());
    const OptimizeOutcome a =
        make_discrete_optimizer(config)->minimize(planted_objective,
                                                  planted_space());
    const OptimizeOutcome b =
        make_discrete_optimizer(config)->minimize(planted_objective,
                                                  planted_space());
    EXPECT_EQ(a.history, b.history);
    EXPECT_EQ(a.best_config, b.best_config);
    EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_P(DiscreteOptimizerContract, CancelTokenStopsMidRunWithBestSoFar)
{
    // The cancellation contract every strategy must honor: a token
    // raised mid-run (here by the objective itself, at its 9th call)
    // stops the search at the next recorded evaluation with
    // StopReason::Cancelled and the best point found so far intact.
    const auto optimizer =
        make_discrete_optimizer(contract_config(GetParam()));
    const auto cancel = std::make_shared<std::atomic<bool>>(false);
    std::size_t calls = 0;
    const auto objective = [&](const std::vector<int>& config) {
        if (++calls == 9) {
            cancel->store(true, std::memory_order_relaxed);
        }
        return planted_objective(config);
    };
    StoppingCriteria criteria;
    criteria.max_evaluations = 300;
    criteria.cancel = cancel;
    const OptimizeOutcome r =
        optimizer->minimize(objective, planted_space(), criteria);
    EXPECT_EQ(r.stop_reason, StopReason::Cancelled);
    // The cancel is observed when the 9th call's value is recorded
    // (block-evaluating strategies may call the objective further
    // ahead, but never record past the token).
    ASSERT_EQ(r.history.size(), 9u);
    expect_trace_consistent(r);
    ASSERT_EQ(r.best_config.size(), 3u);
    EXPECT_DOUBLE_EQ(planted_objective(r.best_config), r.best_value);
    EXPECT_DOUBLE_EQ(
        *std::min_element(r.history.begin(), r.history.end()),
        r.best_value);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, DiscreteOptimizerContract,
    ::testing::ValuesIn(registered_discrete_optimizers()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

double
bowl_objective(const std::vector<double>& x)
{
    double s = 0.0;
    for (const double v : x) {
        s += (v - 0.5) * (v - 0.5);
    }
    return s;
}

class ContinuousOptimizerContract
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ContinuousOptimizerContract, ConvergesOnQuadraticBowl)
{
    const auto optimizer =
        make_continuous_optimizer(contract_config(GetParam()));
    const OptimizeOutcome r =
        optimizer->minimize(bowl_objective, {3.0, -2.0, 1.0});
    EXPECT_LT(r.best_value, 1e-2);
    ASSERT_EQ(r.best_x.size(), 3u);
    for (const double v : r.best_x) {
        EXPECT_NEAR(v, 0.5, 0.1);
    }
    expect_trace_consistent(r);
}

TEST_P(ContinuousOptimizerContract, RespectsEvaluationBudget)
{
    const auto optimizer =
        make_continuous_optimizer(contract_config(GetParam()));
    StoppingCriteria criteria;
    criteria.max_evaluations = 25;
    const OptimizeOutcome r =
        optimizer->minimize(bowl_objective, {3.0, -2.0, 1.0}, criteria);
    EXPECT_LE(r.evaluations, 25u);
    EXPECT_GE(r.evaluations, 10u);
}

TEST_P(ContinuousOptimizerContract, TargetValueStopsEarly)
{
    const auto optimizer =
        make_continuous_optimizer(contract_config(GetParam()));
    StoppingCriteria criteria;
    criteria.target_value = 0.5;
    const OptimizeOutcome r =
        optimizer->minimize(bowl_objective, {3.0, -2.0, 1.0}, criteria);
    EXPECT_EQ(r.stop_reason, StopReason::TargetReached);
    EXPECT_LE(r.best_value, 0.5);
}

TEST_P(ContinuousOptimizerContract, DeterministicUnderFixedSeed)
{
    const OptimizerConfig config = contract_config(GetParam());
    const OptimizeOutcome a = make_continuous_optimizer(config)->minimize(
        bowl_objective, {3.0, -2.0, 1.0});
    const OptimizeOutcome b = make_continuous_optimizer(config)->minimize(
        bowl_objective, {3.0, -2.0, 1.0});
    EXPECT_EQ(a.history, b.history);
    EXPECT_EQ(a.best_x, b.best_x);
}

TEST_P(ContinuousOptimizerContract, CancelTokenStopsMidRunWithBestSoFar)
{
    const auto optimizer =
        make_continuous_optimizer(contract_config(GetParam()));
    const auto cancel = std::make_shared<std::atomic<bool>>(false);
    std::size_t calls = 0;
    const auto objective = [&](const std::vector<double>& x) {
        if (++calls == 9) {
            cancel->store(true, std::memory_order_relaxed);
        }
        return bowl_objective(x);
    };
    StoppingCriteria criteria;
    criteria.max_evaluations = 200;
    criteria.cancel = cancel;
    const OptimizeOutcome r =
        optimizer->minimize(objective, {3.0, -2.0, 1.0}, criteria);
    EXPECT_EQ(r.stop_reason, StopReason::Cancelled);
    ASSERT_FALSE(r.history.empty());
    // Unrecorded probe calls (SPSA's gradient probes) do not check the
    // token, so the stop lands at the next *recorded* evaluation — a
    // couple of calls past the 9th, never a full run.
    EXPECT_LE(r.history.size(), 12u);
    expect_trace_consistent(r);
    ASSERT_EQ(r.best_x.size(), 3u);
    EXPECT_DOUBLE_EQ(
        *std::min_element(r.history.begin(), r.history.end()),
        r.best_value);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ContinuousOptimizerContract,
    ::testing::ValuesIn(registered_continuous_optimizers()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(StoppingCriteria, PatienceStopsStalledSearch)
{
    // Constant objective: no improvement is ever possible, so the run
    // must end after the patience window.
    auto f = [](const std::vector<int>&) { return 1.0; };
    DiscreteSpace space;
    space.cardinalities.assign(4, 4);
    StoppingCriteria criteria;
    criteria.max_evaluations = 300;
    criteria.patience = 7;
    RandomSearchOptimizer optimizer({.samples = 300, .seed = 9});
    const OptimizeOutcome r = optimizer.minimize(f, space, criteria);
    EXPECT_EQ(r.stop_reason, StopReason::Stalled);
    EXPECT_EQ(r.history.size(), 8u);
}

TEST(StoppingCriteria, WallClockBudgetStopsSlowSearch)
{
    // Each evaluation sleeps ~2ms; a 20ms budget must end the run long
    // before the 10k-sample budget.
    auto f = [](const std::vector<int>&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return 1.0;
    };
    DiscreteSpace space;
    space.cardinalities.assign(8, 4);
    StoppingCriteria criteria;
    criteria.max_seconds = 0.02;
    RandomSearchOptimizer optimizer({.samples = 10000, .seed = 9});
    const OptimizeOutcome r = optimizer.minimize(f, space, criteria);
    EXPECT_EQ(r.stop_reason, StopReason::TimeExpired);
    EXPECT_LT(r.evaluations, 10000u);
}

TEST(OptimizerRegistry, StopReasonNames)
{
    EXPECT_EQ(to_string(StopReason::BudgetExhausted), "budget");
    EXPECT_EQ(to_string(StopReason::TargetReached), "target");
    EXPECT_EQ(to_string(StopReason::SpaceExhausted), "space-exhausted");
}

TEST(OptimizerRegistry, BuiltInsConstructibleByKey)
{
    for (const char* kind : {"bayes", "anneal", "random", "exhaustive",
                             "nelder-mead", "spsa"}) {
        EXPECT_TRUE(optimizer_registered(kind)) << kind;
        const auto optimizer = make_optimizer(optimizer_config(kind));
        EXPECT_EQ(optimizer->name(), kind);
    }
    // Containment, not equality: other tests may register extra kinds
    // in the process-global registry (robust under --gtest_shuffle).
    const auto discrete = registered_discrete_optimizers();
    for (const char* kind : {"anneal", "bayes", "exhaustive", "random"}) {
        EXPECT_NE(std::find(discrete.begin(), discrete.end(), kind),
                  discrete.end())
            << kind;
    }
    const auto continuous = registered_continuous_optimizers();
    for (const char* kind : {"nelder-mead", "spsa"}) {
        EXPECT_NE(std::find(continuous.begin(), continuous.end(), kind),
                  continuous.end())
            << kind;
    }
}

TEST(OptimizerRegistry, RejectsUnknownAndWrongSpaceKinds)
{
    EXPECT_THROW(make_optimizer(optimizer_config("no-such-optimizer")),
                 std::invalid_argument);
    EXPECT_THROW(make_discrete_optimizer(optimizer_config("spsa")),
                 std::invalid_argument);
    EXPECT_THROW(make_continuous_optimizer(optimizer_config("bayes")),
                 std::invalid_argument);
}

TEST(OptimizerRegistry, RuntimeExtension)
{
    // A caller-registered strategy is immediately constructible. (The
    // registry is process-global; the enumeration assertions elsewhere
    // check containment of the built-ins, not exact lists, so order
    // does not matter.)
    register_optimizer("random-wide", [](const OptimizerConfig& config) {
        RandomSearchOptions options = config.random;
        options.samples *= 2;
        return std::make_unique<RandomSearchOptimizer>(options);
    });
    EXPECT_TRUE(optimizer_registered("random-wide"));
    const auto optimizer =
        make_discrete_optimizer(optimizer_config("random-wide"));
    const OptimizeOutcome r =
        optimizer->minimize(planted_objective, planted_space());
    EXPECT_EQ(r.best_value, 0.0);
}

} // namespace
} // namespace cafqa
