// Cross-module property tests: randomized invariants that tie the
// subsystems together (algebra laws, simulator equivalences,
// encoding-independent physics, channel contractivity).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "chem/fermion.hpp"
#include "circuit/efficient_su2.hpp"
#include "common/rng.hpp"
#include "core/evaluator.hpp"
#include "density/noise_model.hpp"
#include "mapping/encoding.hpp"
#include "statevector/lanczos.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {
namespace {

PauliString
random_pauli(std::size_t n, Rng& rng)
{
    PauliString p(n);
    for (std::size_t q = 0; q < n; ++q) {
        p.set_letter(q, static_cast<PauliLetter>(rng.uniform_int(0, 3)));
    }
    if (rng.bernoulli(0.5)) {
        p.mul_phase(2);
    }
    return p;
}

class SeededProperty : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng_{static_cast<std::uint64_t>(GetParam()) * 65537 + 3};
};

/** Distributivity of PauliSum products over sums. */
TEST_P(SeededProperty, PauliSumDistributivity)
{
    const std::size_t n = 3;
    auto random_sum = [&](int terms) {
        PauliSum sum(n);
        for (int t = 0; t < terms; ++t) {
            sum.add_term(std::complex<double>{rng_.normal(), rng_.normal()},
                         random_pauli(n, rng_));
        }
        sum.simplify();
        return sum;
    };
    const PauliSum a = random_sum(4);
    const PauliSum b = random_sum(3);
    const PauliSum c = random_sum(3);

    PauliSum lhs = a * (b + c);
    PauliSum rhs = a * b + a * c;
    lhs.simplify();
    rhs.simplify();
    PauliSum diff = lhs - rhs;
    diff.simplify(1e-10);
    EXPECT_EQ(diff.num_terms(), 0u);
}

/** Conjugating a Pauli observable by a circuit leaves <psi|P|psi>
 *  consistent between "evolve the state" and "evolve then measure". */
TEST_P(SeededProperty, HeisenbergConsistency)
{
    const std::size_t n = 3;
    Circuit circuit(n);
    for (int g = 0; g < 12; ++g) {
        const auto q = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        switch (rng_.uniform_int(0, 3)) {
          case 0: circuit.h(q); break;
          case 1: circuit.ry(q, rng_.uniform_real(0, 6.28)); break;
          case 2: circuit.rz(q, rng_.uniform_real(0, 6.28)); break;
          default: circuit.cx(q, (q + 1) % n); break;
        }
    }
    const PauliString p = random_pauli(n, rng_);

    Statevector psi(n);
    psi.apply_circuit(circuit);
    const Complex direct = psi.expectation(p);

    // <psi|P|psi> = <phi|phi'> with |phi> = U|0>, |phi'> = P U|0>.
    Statevector phi = psi;
    phi.apply_pauli(p);
    const Complex via_inner = psi.inner(phi);
    EXPECT_NEAR(std::abs(direct - via_inner), 0.0, 1e-11);
}

/** The two encodings give identical spectra for random quadratic
 *  fermion Hamiltonians H = sum h_pq a^dag_p a_q (h Hermitian). */
TEST_P(SeededProperty, EncodingIndependentQuadraticSpectra)
{
    const std::size_t modes = 4;
    // Random real-symmetric one-body matrix.
    std::vector<std::vector<double>> h(modes, std::vector<double>(modes));
    for (std::size_t p = 0; p < modes; ++p) {
        for (std::size_t q = p; q < modes; ++q) {
            h[p][q] = h[q][p] = rng_.normal();
        }
    }
    auto build = [&](EncodingKind kind) {
        const FermionEncoding enc(kind, modes);
        PauliSum op(modes);
        for (std::size_t p = 0; p < modes; ++p) {
            for (std::size_t q = 0; q < modes; ++q) {
                PauliSum term = enc.creation(p) * enc.annihilation(q);
                term *= h[p][q];
                op += term;
            }
        }
        op.simplify();
        op.chop_to_hermitian(1e-9);
        return op;
    };
    const auto spec_jw = dense_spectrum(build(EncodingKind::JordanWigner));
    const auto spec_parity = dense_spectrum(build(EncodingKind::Parity));
    ASSERT_EQ(spec_jw.size(), spec_parity.size());
    for (std::size_t i = 0; i < spec_jw.size(); ++i) {
        EXPECT_NEAR(spec_jw[i], spec_parity[i], 1e-8);
    }
}

/** Depolarizing noise only shrinks Pauli expectations (contractivity). */
TEST_P(SeededProperty, NoiseContractsExpectations)
{
    const std::size_t n = 2;
    Circuit circuit(n);
    circuit.ry(0, rng_.uniform_real(0, 6.28));
    circuit.cx(0, 1);
    circuit.rz(1, rng_.uniform_real(0, 6.28));
    circuit.ry(1, rng_.uniform_real(0, 6.28));

    const DensityMatrix clean =
        simulate_noisy(circuit, {}, NoiseModel{});
    const DensityMatrix noisy = simulate_noisy(
        circuit, {}, NoiseModel{"test", 0.02, 0.05, 0.0});

    for (int probe = 0; probe < 15; ++probe) {
        PauliString p = random_pauli(n, rng_);
        p.set_phase_exponent(
            static_cast<std::uint8_t>(p.phase_exponent() & 1 ? 1 : 0));
        // Use the canonical Hermitian representative.
        PauliSum op(n);
        op.add_term(1.0, p);
        const double before = std::abs(clean.expectation(op));
        const double after = std::abs(noisy.expectation(op));
        EXPECT_LE(after, before + 1e-10);
    }
    EXPECT_NEAR(noisy.trace(), 1.0, 1e-10);
}

/** Clifford evaluator at quarter-turn angles equals the statevector
 *  evaluator on EfficientSU2, for any observable. */
TEST_P(SeededProperty, EvaluatorEquivalenceOnAnsatz)
{
    const std::size_t n = 4;
    const Circuit ansatz = make_efficient_su2(n);
    std::vector<int> steps(ansatz.num_params());
    for (auto& s : steps) {
        s = static_cast<int>(rng_.uniform_int(0, 3));
    }
    PauliSum op(n);
    for (int t = 0; t < 10; ++t) {
        op.add_term(rng_.normal(), random_pauli(n, rng_));
    }
    op.simplify();
    op.chop_to_hermitian(1e-12);

    CliffordEvaluator clifford(ansatz);
    clifford.prepare(steps);
    IdealEvaluator ideal(ansatz);
    std::vector<double> angles(steps.size());
    for (std::size_t i = 0; i < steps.size(); ++i) {
        angles[i] = steps[i] * std::numbers::pi / 2.0;
    }
    ideal.prepare(angles);
    EXPECT_NEAR(clifford.expectation(op), ideal.expectation(op), 1e-10);
}

/** Lanczos lower-bounds every Rayleigh quotient sampled from random
 *  product states. */
TEST_P(SeededProperty, GroundEnergyIsVariationalLowerBound)
{
    const std::size_t n = 4;
    PauliSum h(n);
    for (int t = 0; t < 15; ++t) {
        h.add_term(rng_.normal(), random_pauli(n, rng_));
    }
    h.simplify();
    h.chop_to_hermitian(1e-12);
    if (h.num_terms() == 0) {
        GTEST_SKIP();
    }
    const GroundState gs = lanczos_ground_state(h);

    for (int trial = 0; trial < 5; ++trial) {
        Circuit c(n);
        for (std::size_t q = 0; q < n; ++q) {
            c.ry(q, rng_.uniform_real(0, 6.28));
            c.rz(q, rng_.uniform_real(0, 6.28));
        }
        Statevector psi(n);
        psi.apply_circuit(c);
        EXPECT_GE(psi.expectation(h), gs.energy - 1e-7);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty, ::testing::Range(0, 12));

} // namespace
} // namespace cafqa
