// Tests for the unified backend API: the thread pool, the string-keyed
// backend registry, batched-vs-single expectation equivalence, and
// backend cloning.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numbers>

#include "circuit/efficient_su2.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/backend_registry.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/evaluator.hpp"
#include "core/sampled_evaluator.hpp"

namespace cafqa {
namespace {

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);

    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t, std::size_t index) {
        hits[index].fetch_add(1);
    });
    for (const auto& hit : hits) {
        EXPECT_EQ(hit.load(), 1);
    }

    // Zero-count jobs are a no-op.
    pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, WorkerIdsStayInRange)
{
    ThreadPool pool(4);
    std::atomic<bool> in_range{true};
    pool.parallel_for(64, [&](std::size_t worker, std::size_t) {
        if (worker >= pool.size()) {
            in_range = false;
        }
    });
    EXPECT_TRUE(in_range.load());
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallel_for(32,
                          [&](std::size_t, std::size_t index) {
                              if (index == 7) {
                                  throw std::runtime_error("boom");
                              }
                          }),
        std::runtime_error);

    // The pool must stay usable after an exception.
    std::atomic<int> count{0};
    pool.parallel_for(8, [&](std::size_t, std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8);
}

// --------------------------------------------------------------- registry

Circuit
clifford_t_test_circuit(std::size_t n)
{
    Circuit c = make_efficient_su2(n);
    c.t(0);
    c.t(n - 1);
    return c;
}

TEST(BackendRegistry, ListsAllBuiltInKinds)
{
    const auto kinds = registered_backends();
    for (const char* kind :
         {"clifford", "clifford_t", "statevector", "density", "sampled"}) {
        EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind),
                  kinds.end())
            << kind;
        EXPECT_TRUE(backend_registered(kind)) << kind;
    }
}

TEST(BackendRegistry, RoundTripConstructsEveryKind)
{
    const std::size_t n = 3;
    const Circuit ansatz = make_efficient_su2(n);

    struct Case
    {
        std::string kind;
        bool discrete;
    };
    for (const Case& test_case :
         std::vector<Case>{{"clifford", true},
                           {"clifford_t", true},
                           {"statevector", false},
                           {"density", false},
                           {"sampled", false}}) {
        BackendConfig config;
        config.kind = test_case.kind;
        config.ansatz = test_case.kind == "clifford_t"
            ? clifford_t_test_circuit(n)
            : ansatz;
        config.noise = NoiseModel{"test", 0.001, 0.01, 0.001};
        config.shots = 128;
        config.seed = 5;

        const auto backend = make_backend(config);
        ASSERT_NE(backend, nullptr) << test_case.kind;
        EXPECT_EQ(backend->kind(), test_case.kind);
        EXPECT_EQ(backend->discrete(), test_case.discrete)
            << test_case.kind;
        EXPECT_EQ(backend->num_qubits(), n) << test_case.kind;
        EXPECT_EQ(backend->num_params(), ansatz.num_params())
            << test_case.kind;
    }
}

TEST(BackendRegistry, UnknownKindThrows)
{
    BackendConfig config;
    config.kind = "quantum-teleporter";
    config.ansatz = make_efficient_su2(2);
    EXPECT_THROW(make_backend(config), std::invalid_argument);
}

TEST(BackendRegistry, CheckedDowncastsRejectWrongDomain)
{
    BackendConfig config;
    config.ansatz = make_efficient_su2(2);

    config.kind = "statevector";
    EXPECT_THROW(make_discrete_backend(config), std::invalid_argument);
    EXPECT_NO_THROW(make_continuous_backend(config));

    config.kind = "clifford";
    EXPECT_THROW(make_continuous_backend(config), std::invalid_argument);
    EXPECT_NO_THROW(make_discrete_backend(config));
}

TEST(BackendRegistry, CustomKindRegistersAndConstructs)
{
    register_backend("test_custom", [](const BackendConfig& config) {
        return std::make_unique<IdealEvaluator>(config.ansatz);
    });
    EXPECT_TRUE(backend_registered("test_custom"));

    BackendConfig config;
    config.kind = "test_custom";
    config.ansatz = make_efficient_su2(2);
    const auto backend = make_backend(config);
    // The factory decides the concrete type; kind() reports it.
    EXPECT_EQ(backend->kind(), "statevector");
}

// --------------------------------------- batched expectation equivalence

std::vector<PauliSum>
random_observables(std::size_t num_qubits, std::size_t count,
                   std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<PauliSum> observables;
    for (std::size_t o = 0; o < count; ++o) {
        PauliSum op(num_qubits);
        const int terms = static_cast<int>(rng.uniform_int(1, 6));
        for (int t = 0; t < terms; ++t) {
            PauliString p(num_qubits);
            for (std::size_t q = 0; q < num_qubits; ++q) {
                p.set_letter(
                    q, static_cast<PauliLetter>(rng.uniform_int(0, 3)));
            }
            op.add_term(rng.normal(), p);
        }
        op.simplify();
        observables.push_back(std::move(op));
    }
    return observables;
}

TEST(BatchedExpectations, MatchSingleOpPathOnDiscreteBackends)
{
    const std::size_t n = 3;
    const auto observables = random_observables(n, 7, 42);

    for (const std::string kind : {"clifford", "clifford_t"}) {
        BackendConfig config;
        config.kind = kind;
        config.ansatz = kind == "clifford_t"
            ? clifford_t_test_circuit(n)
            : make_efficient_su2(n);
        const auto backend = make_discrete_backend(config);

        Rng rng(7);
        std::vector<int> steps(backend->num_params());
        for (auto& s : steps) {
            s = static_cast<int>(rng.uniform_int(0, 3));
        }
        backend->prepare(steps);

        const std::vector<double> batched =
            backend->expectations(observables);
        ASSERT_EQ(batched.size(), observables.size()) << kind;
        for (std::size_t o = 0; o < observables.size(); ++o) {
            EXPECT_NEAR(batched[o], backend->expectation(observables[o]),
                        1e-12)
                << kind << " observable " << o;
        }
    }
}

TEST(BatchedExpectations, MatchSingleOpPathOnContinuousBackends)
{
    const std::size_t n = 3;
    const Circuit ansatz = make_efficient_su2(n);
    const auto observables = random_observables(n, 7, 43);

    Rng rng(9);
    std::vector<double> params(ansatz.num_params());
    for (auto& p : params) {
        p = rng.uniform_real(0.0, 2.0 * std::numbers::pi);
    }

    for (const std::string kind : {"statevector", "density"}) {
        BackendConfig config;
        config.kind = kind;
        config.ansatz = ansatz;
        config.noise = NoiseModel{"test", 0.002, 0.01, 0.002};
        const auto backend = make_continuous_backend(config);
        backend->prepare(params);

        const std::vector<double> batched =
            backend->expectations(observables);
        for (std::size_t o = 0; o < observables.size(); ++o) {
            EXPECT_NEAR(batched[o], backend->expectation(observables[o]),
                        1e-12)
                << kind << " observable " << o;
        }
    }
}

TEST(BatchedExpectations, SampledBackendMatchesCloneWithSameRngState)
{
    // The sampled backend draws from its RNG on every expectation, so
    // the equivalence check runs the batched path on one instance and
    // the single-op path on a clone that starts from the same RNG state.
    const std::size_t n = 3;
    const auto observables = random_observables(n, 5, 44);

    BackendConfig config;
    config.kind = "sampled";
    config.ansatz = make_efficient_su2(n);
    config.shots = 64;
    config.seed = 11;
    const auto backend = make_continuous_backend(config);

    std::vector<double> params(backend->num_params(), 0.5);
    backend->prepare(params);
    const auto twin = backend->clone_continuous();

    const std::vector<double> batched =
        backend->expectations(observables);
    for (std::size_t o = 0; o < observables.size(); ++o) {
        EXPECT_NEAR(batched[o], twin->expectation(observables[o]), 1e-12)
            << "observable " << o;
    }
}

TEST(BatchedExpectations, CandidateBatchMatchesPreparePerCandidate)
{
    const std::size_t n = 3;
    const Circuit ansatz = make_efficient_su2(n);
    const PauliSum op = PauliSum::from_terms(
        n, {{0.7, "XXI"}, {0.3, "IZZ"}, {-0.2, "YIY"}});

    Rng rng(17);
    std::vector<std::vector<int>> candidates;
    for (int c = 0; c < 9; ++c) {
        std::vector<int> steps(ansatz.num_params());
        for (auto& s : steps) {
            s = static_cast<int>(rng.uniform_int(0, 3));
        }
        candidates.push_back(std::move(steps));
    }

    BackendConfig config;
    config.kind = "clifford";
    config.ansatz = ansatz;
    const auto batch_backend = make_discrete_backend(config);
    const auto single_backend = make_discrete_backend(config);

    const std::vector<double> batched =
        batch_backend->expectation_batch(candidates, op);
    ASSERT_EQ(batched.size(), candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
        single_backend->prepare(candidates[c]);
        EXPECT_NEAR(batched[c], single_backend->expectation(op), 1e-12)
            << "candidate " << c;
    }
}

TEST(BackendClone, ClonesAreIndependent)
{
    const std::size_t n = 2;
    const Circuit ansatz = make_efficient_su2(n);
    const PauliSum zz = PauliSum::from_terms(n, {{1.0, "ZZ"}});

    CliffordEvaluator original(ansatz);
    original.prepare(std::vector<int>(ansatz.num_params(), 0));
    const double before = original.expectation(zz);

    const auto copy = original.clone_discrete();
    EXPECT_NEAR(copy->expectation(zz), before, 1e-12);

    // Re-preparing the clone must not disturb the original.
    std::vector<int> other(ansatz.num_params(), 0);
    other[0] = 2;
    copy->prepare(other);
    EXPECT_NEAR(original.expectation(zz), before, 1e-12);
}

} // namespace
} // namespace cafqa
