// Tests for the CafqaPipeline facade: parity with the legacy free
// functions and with a hand-rolled serial search, determinism across
// thread counts, observer events, staged execution, and the
// exhaustive-search fan-out.

#include <gtest/gtest.h>

#include "circuit/efficient_su2.hpp"
#include "core/cafqa_driver.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/evaluator.hpp"
#include "core/pipeline.hpp"
#include "problems/molecule_factory.hpp"
#include "statevector/lanczos.hpp"

namespace cafqa {
namespace {

CafqaOptions
small_budget(std::uint64_t seed)
{
    CafqaOptions options;
    options.warmup = 60;
    options.iterations = 60;
    options.seed = seed;
    return options;
}

TEST(CafqaPipeline, BatchedWarmupMatchesSerialBayesOpt)
{
    // The pipeline's thread-pool warm-up must reproduce the exact
    // trajectory of a hand-rolled serial search with the same options.
    const auto system = problems::make_molecular_system("H2", 2.2);
    const VqaObjective objective = problems::make_objective(system);
    const CafqaOptions options = small_budget(19);

    // Serial reference: no warmup_batch hook, plain evaluator loop.
    CliffordEvaluator evaluator(system.ansatz);
    BayesOptOptions bayes = options.bayes;
    bayes.warmup = options.warmup;
    bayes.iterations = options.iterations;
    bayes.seed = options.seed;
    const BayesOptResult reference = bayes_opt_minimize(
        [&](const std::vector<int>& steps) {
            evaluator.prepare(steps);
            return objective.evaluate(evaluator);
        },
        clifford_search_space(system.ansatz), bayes);

    // Pipeline with a 3-worker pool.
    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = objective;
    config.search = options;
    config.threads = 3;
    CafqaPipeline pipeline(std::move(config));
    const CafqaResult& result = pipeline.run_clifford_search();

    ASSERT_EQ(result.history.size(), reference.history.size());
    for (std::size_t i = 0; i < result.history.size(); ++i) {
        EXPECT_DOUBLE_EQ(result.history[i], reference.history[i])
            << "evaluation " << i;
    }
    EXPECT_EQ(result.best_steps, reference.best_config);
    EXPECT_DOUBLE_EQ(result.best_objective, reference.best_value);
    EXPECT_EQ(result.evaluations_to_best, reference.evaluations_to_best);
}

TEST(CafqaPipeline, DeterministicAcrossThreadCounts)
{
    const auto system = problems::make_molecular_system("H2", 1.5);
    const VqaObjective objective = problems::make_objective(system);

    std::vector<CafqaResult> results;
    for (const std::size_t threads : {1u, 4u}) {
        PipelineConfig config;
        config.ansatz = system.ansatz;
        config.objective = objective;
        config.search = small_budget(7);
        config.threads = threads;
        CafqaPipeline pipeline(std::move(config));
        results.push_back(pipeline.run_clifford_search());
    }
    EXPECT_EQ(results[0].best_steps, results[1].best_steps);
    EXPECT_EQ(results[0].history, results[1].history);
}

TEST(CafqaPipeline, MatchesLegacyFreeFunctionOnH2)
{
    const auto system = problems::make_molecular_system("H2", 2.2);
    const VqaObjective objective = problems::make_objective(system);
    const CafqaOptions options = small_budget(23);

    const CafqaResult legacy =
        run_cafqa(system.ansatz, objective, options);

    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = objective;
    config.search = options;
    CafqaPipeline pipeline(std::move(config));
    const CafqaResult& modern = pipeline.run_clifford_search();

    EXPECT_EQ(modern.best_steps, legacy.best_steps);
    EXPECT_DOUBLE_EQ(modern.best_energy, legacy.best_energy);
    EXPECT_DOUBLE_EQ(modern.best_objective, legacy.best_objective);
    EXPECT_EQ(modern.history, legacy.history);
}

TEST(CafqaPipeline, ObserverSeesStagesAndProgress)
{
    const auto system = problems::make_molecular_system("H2", 1.2);

    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = problems::make_objective(system);
    config.search = small_budget(3);
    config.tuner.iterations = 20;
    CafqaPipeline pipeline(std::move(config));

    std::vector<std::string> stages_begun;
    std::vector<std::string> stages_ended;
    std::size_t progress_events = 0;
    pipeline.set_observer([&](const PipelineEvent& event) {
        switch (event.event) {
          case PipelineEvent::Kind::StageBegin:
            stages_begun.emplace_back(event.stage);
            break;
          case PipelineEvent::Kind::StageEnd:
            stages_ended.emplace_back(event.stage);
            break;
          case PipelineEvent::Kind::Progress:
            ++progress_events;
            break;
        }
    });

    const CafqaResult& search = pipeline.run_clifford_search();
    EXPECT_EQ(stages_begun,
              std::vector<std::string>{"clifford_search"});
    EXPECT_EQ(stages_ended, std::vector<std::string>{"clifford_search"});
    // One progress event per discrete-search evaluation.
    EXPECT_EQ(progress_events, search.history.size());

    pipeline.run_vqa_tune();
    EXPECT_EQ(stages_begun,
              (std::vector<std::string>{"clifford_search", "vqa_tune"}));
    EXPECT_EQ(stages_ended,
              (std::vector<std::string>{"clifford_search", "vqa_tune"}));
    EXPECT_GT(progress_events, search.history.size());
}

TEST(CafqaPipeline, StagesAreIdempotentAndChained)
{
    const auto system = problems::make_molecular_system("H2", 1.8);

    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = problems::make_objective(system);
    config.search = small_budget(5);
    config.tuner.iterations = 30;
    CafqaPipeline pipeline(std::move(config));

    EXPECT_FALSE(pipeline.clifford_search_done());
    EXPECT_THROW(pipeline.clifford_result(), std::invalid_argument);
    EXPECT_THROW(pipeline.best_steps(), std::invalid_argument);

    // run_vqa_tune auto-runs the Clifford stage first.
    const VqaTuneResult& tuned = pipeline.run_vqa_tune();
    EXPECT_TRUE(pipeline.clifford_search_done());
    EXPECT_TRUE(pipeline.vqa_tune_done());

    // Tuning from the CAFQA point can only improve the objective.
    EXPECT_LE(tuned.final_value,
              pipeline.clifford_result().best_objective + 1e-9);

    // Second calls return the cached results.
    const CafqaResult& first = pipeline.run_clifford_search();
    const CafqaResult& second = pipeline.run_clifford_search();
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(&pipeline.run_vqa_tune(), &tuned);

    // The explicit-initialization overload refuses to silently drop a
    // new starting point once tuning has happened.
    EXPECT_THROW(pipeline.run_vqa_tune(pipeline.initial_params()),
                 std::invalid_argument);
}

TEST(CafqaPipeline, TBoostNeverHurtsAndFillsResultTypes)
{
    const auto system = problems::make_molecular_system("H2", 1.8);

    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = problems::make_objective(system);
    config.search = small_budget(13);
    CafqaPipeline pipeline(std::move(config));

    const TBoostResult& boost = pipeline.run_t_boost(1);
    const CafqaResult& base = pipeline.clifford_result();

    EXPECT_LE(boost.best_objective, base.best_objective + 1e-9);
    EXPECT_LE(boost.t_positions.size(), 1u);
    EXPECT_EQ(boost.circuit.count(GateKind::T), boost.t_positions.size());
    if (boost.t_positions.empty()) {
        // No insertion accepted: the boost echoes the Clifford point.
        EXPECT_EQ(boost.best_steps, base.best_steps);
        EXPECT_DOUBLE_EQ(boost.best_energy, base.best_energy);
    }
    EXPECT_EQ(&pipeline.best_circuit(), &boost.circuit);

    const GroundState exact = lanczos_ground_state(system.hamiltonian);
    EXPECT_GE(boost.best_energy, exact.energy - 1e-9);
}

TEST(CafqaPipeline, SampledTuneBackendRunsThroughRegistry)
{
    const auto system = problems::make_molecular_system("H2", 1.2);

    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = problems::make_objective(system);
    config.search = small_budget(29);
    config.tuner.iterations = 10;
    config.tuner.backend = "sampled";
    config.tuner.shots = 256;
    CafqaPipeline pipeline(std::move(config));

    const VqaTuneResult& tuned = pipeline.run_vqa_tune();
    // Start-point value plus one entry per SPSA step.
    EXPECT_EQ(tuned.trace.size(), 11u);
    EXPECT_TRUE(std::isfinite(tuned.final_value));
}

TEST(CafqaPipeline, AnySearchTunerRegistryPairRunsEndToEnd)
{
    const auto system = problems::make_molecular_system("H2", 1.8);
    const VqaObjective objective = problems::make_objective(system);

    for (const std::string search : {"anneal", "random", "exhaustive"}) {
        for (const std::string tuner : {"nelder-mead", "spsa"}) {
            PipelineConfig config;
            config.ansatz = system.ansatz;
            config.objective = objective;
            config.search = small_budget(37);
            config.tuner.iterations = 25;
            config.search_optimizer = optimizer_config(search);
            config.tuner_optimizer = optimizer_config(tuner);
            CafqaPipeline pipeline(std::move(config));

            const CafqaResult& found = pipeline.run_clifford_search();
            EXPECT_TRUE(std::isfinite(found.best_objective))
                << search << "+" << tuner;
            // Every strategy honors the shared stage budget.
            EXPECT_LE(found.history.size(), 120u) << search;

            const VqaTuneResult& tuned = pipeline.run_vqa_tune();
            EXPECT_TRUE(std::isfinite(tuned.final_value))
                << search << "+" << tuner;
            EXPECT_LE(tuned.final_value, found.best_objective + 1e-9)
                << search << "+" << tuner;
        }
    }
}

TEST(CafqaPipeline, SearchStrategiesAgreeOnSmallProblem)
{
    // H2's Clifford space is small enough that exhaustive enumeration
    // certifies the optimum; the guided strategies must match it at a
    // generous budget (the paper's Section 5 validation).
    const auto system = problems::make_molecular_system("H2", 2.2);
    const VqaObjective objective = problems::make_objective(system);

    auto best_with = [&](const std::string& kind, std::size_t budget) {
        PipelineConfig config;
        config.ansatz = system.ansatz;
        config.objective = objective;
        config.search.warmup = budget / 2;
        config.search.iterations = budget - budget / 2;
        config.search.seed = 11;
        config.search_optimizer = optimizer_config(kind);
        CafqaPipeline pipeline(std::move(config));
        return pipeline.run_clifford_search().best_objective;
    };

    const double exhaustive = best_with("exhaustive", 1u << 16);
    EXPECT_NEAR(best_with("bayes", 400), exhaustive, 1e-9);
}

TEST(CafqaPipeline, TargetValueStopsSearchEarly)
{
    const auto system = problems::make_molecular_system("H2", 2.2);
    const VqaObjective objective = problems::make_objective(system);

    // Reference run: full budget, no early exit.
    PipelineConfig full;
    full.ansatz = system.ansatz;
    full.objective = objective;
    full.search = small_budget(19);
    CafqaPipeline full_pipeline(std::move(full));
    const CafqaResult& reference = full_pipeline.run_clifford_search();
    ASSERT_LT(reference.evaluations_to_best, reference.history.size());

    // Same seed with the best value as the target: the stage must stop
    // at the evaluation that reaches it instead of burning the rest of
    // the budget.
    PipelineConfig early;
    early.ansatz = system.ansatz;
    early.objective = objective;
    early.search = small_budget(19);
    early.stopping.target_value = reference.best_objective;
    CafqaPipeline early_pipeline(std::move(early));
    const CafqaResult& stopped = early_pipeline.run_clifford_search();

    EXPECT_EQ(stopped.stop_reason, StopReason::TargetReached);
    EXPECT_EQ(stopped.history.size(), reference.evaluations_to_best);
    EXPECT_LT(stopped.history.size(), reference.history.size());
    EXPECT_DOUBLE_EQ(stopped.best_objective, reference.best_objective);
}

TEST(CafqaPipeline, TargetValueStopsTunerEarly)
{
    const auto system = problems::make_molecular_system("H2", 1.2);

    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = problems::make_objective(system);
    config.search = small_budget(3);
    config.tuner.iterations = 200;
    CafqaPipeline reference_pipeline(std::move(config));
    const VqaTuneResult& reference = reference_pipeline.run_vqa_tune();

    PipelineConfig early;
    early.ansatz = system.ansatz;
    early.objective = problems::make_objective(system);
    early.search = small_budget(3);
    early.tuner.iterations = 200;
    early.stopping.target_value = reference.final_value;
    CafqaPipeline early_pipeline(std::move(early));
    const VqaTuneResult& stopped = early_pipeline.run_vqa_tune();

    EXPECT_EQ(stopped.stop_reason, StopReason::TargetReached);
    EXPECT_LE(stopped.trace.size(), reference.trace.size());
    EXPECT_LE(stopped.final_value, reference.final_value + 1e-12);
}

TEST(ExhaustiveSearch, ParallelScanMatchesSerialReference)
{
    // 4 parameters -> 256 configurations: cheap enough to enumerate
    // twice. The thread-pool fan-out must reproduce the serial scan
    // exactly, including the first-winner tie-breaking.
    Circuit ansatz(2);
    ansatz.ry_param(0);
    ansatz.ry_param(1);
    ansatz.cx(0, 1);
    ansatz.rz_param(0);
    ansatz.ry_param(1);

    VqaObjective objective;
    objective.hamiltonian = PauliSum::from_terms(
        2, {{0.5, "XX"}, {-0.3, "ZI"}, {0.2, "ZZ"}});

    CliffordEvaluator evaluator(ansatz);
    std::vector<int> steps(ansatz.num_params(), 0);
    double best_value = 0.0;
    std::vector<int> best_steps;
    std::size_t best_code = 0;
    const std::uint64_t limit =
        std::uint64_t{1} << (2 * ansatz.num_params());
    for (std::uint64_t code = 0; code < limit; ++code) {
        std::uint64_t rest = code;
        for (std::size_t i = 0; i < steps.size(); ++i) {
            steps[i] = static_cast<int>(rest & 3);
            rest >>= 2;
        }
        evaluator.prepare(steps);
        const double value = objective.evaluate(evaluator);
        if (code == 0 || value < best_value) {
            best_value = value;
            best_steps = steps;
            best_code = code;
        }
    }

    const CafqaResult result =
        exhaustive_clifford_search(ansatz, objective);
    EXPECT_EQ(result.best_steps, best_steps);
    EXPECT_DOUBLE_EQ(result.best_objective, best_value);
    EXPECT_EQ(result.evaluations_to_best, best_code + 1);
}

TEST(LegacyShims, RunCafqaKtSplitsBaseAndBoost)
{
    const auto system = problems::make_molecular_system("H2", 1.8);
    const VqaObjective objective = problems::make_objective(system);

    const CafqaKtResult kt =
        run_cafqa_kt(system.ansatz, objective, 1, small_budget(31));
    EXPECT_LE(kt.boost.best_objective, kt.base.best_objective + 1e-9);
    EXPECT_EQ(kt.boost.circuit.count(GateKind::T),
              kt.boost.t_positions.size());
}

} // namespace
} // namespace cafqa
