// Unit and property tests for the Pauli algebra module.

#include <gtest/gtest.h>

#include <complex>
#include <map>
#include <string>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "pauli/grouping.hpp"
#include "pauli/pauli_string.hpp"
#include "pauli/pauli_sum.hpp"
#include "stabilizer/expectation_engine.hpp"
#include "stabilizer/stabilizer_simulator.hpp"

namespace cafqa {
namespace {

TEST(PauliString, IdentityDefaults)
{
    PauliString p(4);
    EXPECT_EQ(p.num_qubits(), 4u);
    EXPECT_TRUE(p.is_identity_letters());
    EXPECT_TRUE(p.is_hermitian());
    EXPECT_EQ(p.weight(), 0u);
    EXPECT_EQ(p.to_label(), "IIII");
}

TEST(PauliString, FromLabelRoundTrip)
{
    for (const std::string label :
         {"XIZY", "-XX", "+iZZ", "-iYI", "IIII", "YYYY", "-YZXI"}) {
        const PauliString p = PauliString::from_label(label);
        std::string expect = label;
        if (expect[0] != '-' && expect[0] != '+') {
            // no prefix
        } else if (expect.substr(0, 2) == "+i") {
            // canonical form
        }
        EXPECT_EQ(PauliString::from_label(p.to_label()), p) << label;
    }
    EXPECT_EQ(PauliString::from_label("XIZY").to_label(), "XIZY");
    EXPECT_EQ(PauliString::from_label("-XX").to_label(), "-XX");
}

TEST(PauliString, SingleQubitMultiplicationTable)
{
    // Expected products with phases: row * column.
    const std::map<std::pair<char, char>, std::string> table = {
        {{'X', 'X'}, "I"},   {{'Y', 'Y'}, "I"},   {{'Z', 'Z'}, "I"},
        {{'X', 'Y'}, "+iZ"}, {{'Y', 'X'}, "-iZ"}, {{'Y', 'Z'}, "+iX"},
        {{'Z', 'Y'}, "-iX"}, {{'Z', 'X'}, "+iY"}, {{'X', 'Z'}, "-iY"},
        {{'X', 'I'}, "X"},   {{'I', 'X'}, "X"},   {{'I', 'I'}, "I"},
    };
    for (const auto& [operands, expected] : table) {
        const PauliString a =
            PauliString::from_label(std::string(1, operands.first));
        const PauliString b =
            PauliString::from_label(std::string(1, operands.second));
        EXPECT_EQ((a * b).to_label(), expected)
            << operands.first << " * " << operands.second;
    }
}

TEST(PauliString, CommutationRules)
{
    const PauliString xx = PauliString::from_label("XX");
    const PauliString zz = PauliString::from_label("ZZ");
    const PauliString zi = PauliString::from_label("ZI");
    EXPECT_TRUE(xx.commutes_with(zz));
    EXPECT_FALSE(xx.commutes_with(zi));
    EXPECT_TRUE(zz.commutes_with(zi));
}

TEST(PauliString, HermiticityTracking)
{
    EXPECT_TRUE(PauliString::from_label("Y").is_hermitian());
    EXPECT_TRUE(PauliString::from_label("-YYZ").is_hermitian());
    EXPECT_FALSE(PauliString::from_label("+iX").is_hermitian());
    const PauliString y2 = PauliString::from_label("YY");
    EXPECT_NEAR((y2.sign() - std::complex<double>{1.0, 0.0}).real(), 0.0,
                1e-15);
}

TEST(PauliString, SetLetterPreservesSign)
{
    PauliString p = PauliString::from_label("-XIZ");
    p.set_letter(1, PauliLetter::Y);
    EXPECT_EQ(p.to_label(), "-XYZ");
    p.set_letter(1, PauliLetter::I);
    EXPECT_EQ(p.to_label(), "-XIZ");
}

TEST(PauliString, RemoveQubit)
{
    PauliString p = PauliString::from_label("-XZYI");
    p.remove_qubit(1);
    EXPECT_EQ(p.to_label(), "-XYI");
    EXPECT_THROW(p.remove_qubit(1), std::invalid_argument); // Y has X bit
}

TEST(PauliString, WideStringsCrossWordBoundary)
{
    PauliString p(130);
    p.set_letter(0, PauliLetter::X);
    p.set_letter(64, PauliLetter::Y);
    p.set_letter(129, PauliLetter::Z);
    EXPECT_EQ(p.weight(), 3u);
    EXPECT_TRUE(p.is_hermitian());

    PauliString q(130);
    q.set_letter(64, PauliLetter::Z); // anticommutes with the Y at 64
    EXPECT_FALSE(p.commutes_with(q));
    q.set_letter(0, PauliLetter::Z);  // second anticommuting position
    EXPECT_TRUE(p.commutes_with(q));
}

// Property: multiplication is associative and phase-exact on random strings.
class PauliAlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(PauliAlgebraProperty, AssociativityAndInverse)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 9));
    auto random_string = [&]() {
        PauliString p(n);
        for (std::size_t q = 0; q < n; ++q) {
            p.set_letter(q,
                         static_cast<PauliLetter>(rng.uniform_int(0, 3)));
        }
        if (rng.bernoulli(0.5)) {
            p.mul_phase(2); // random sign
        }
        return p;
    };
    const PauliString a = random_string();
    const PauliString b = random_string();
    const PauliString c = random_string();

    EXPECT_EQ(((a * b) * c), (a * (b * c)));

    // P * P = sign-squared identity for Hermitian P.
    const PauliString sq = a * a;
    EXPECT_TRUE(sq.is_identity_letters());
    EXPECT_NEAR(std::abs(sq.sign() - std::complex<double>{1.0, 0.0}), 0.0,
                1e-15);

    // Commutation is symmetric.
    EXPECT_EQ(a.commutes_with(b), b.commutes_with(a));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PauliAlgebraProperty,
                         ::testing::Range(0, 25));

TEST(PauliSum, SimplifyCombinesTerms)
{
    PauliSum sum(2);
    sum.add_term(1.0, PauliString::from_label("XY"));
    sum.add_term(0.5, PauliString::from_label("XY"));
    sum.add_term(-1.5, PauliString::from_label("XY"));
    sum.add_term(2.0, PauliString::from_label("ZZ"));
    sum.simplify();
    ASSERT_EQ(sum.num_terms(), 1u);
    EXPECT_EQ(sum.terms()[0].string.to_label(), "ZZ");
}

TEST(PauliSum, SignsFoldIntoCoefficients)
{
    PauliSum sum(1);
    sum.add_term(2.0, PauliString::from_label("-Z"));
    sum.simplify();
    ASSERT_EQ(sum.num_terms(), 1u);
    EXPECT_NEAR(sum.terms()[0].coefficient.real(), -2.0, 1e-15);
    EXPECT_EQ(sum.terms()[0].string.to_label(), "Z");
}

TEST(PauliSum, ProductMatchesAlgebra)
{
    // (X + Z) * (X - Z) = XX - XZ + ZX - ZZ = I - (-iY)... validated
    // numerically below: X*Z = -iY, Z*X = +iY, so the product is
    // I*1 - (-iY) + (iY) - I = 2iY.
    const PauliSum a = PauliSum::from_terms(1, {{1.0, "X"}, {1.0, "Z"}});
    const PauliSum b = PauliSum::from_terms(1, {{1.0, "X"}, {-1.0, "Z"}});
    PauliSum prod = a * b;
    prod.simplify();
    ASSERT_EQ(prod.num_terms(), 1u);
    EXPECT_EQ(prod.terms()[0].string.to_label(), "Y");
    EXPECT_NEAR(prod.terms()[0].coefficient.imag(), 2.0, 1e-15);
}

TEST(PauliSum, DiagonalPartExtraction)
{
    const PauliSum h = PauliSum::from_terms(
        4, {{0.1, "XYXY"}, {0.5, "IZZI"}, {0.25, "ZIII"}, {-0.3, "IXII"}});
    EXPECT_FALSE(h.is_diagonal());
    const PauliSum diag = h.diagonal_part();
    EXPECT_EQ(diag.num_terms(), 2u);
    EXPECT_TRUE(diag.is_diagonal());
    EXPECT_NEAR(diag.one_norm(), 0.75, 1e-15);
}

TEST(PauliSum, IdentityCoefficient)
{
    const PauliSum h =
        PauliSum::from_terms(2, {{1.5, "II"}, {0.5, "ZZ"}});
    EXPECT_NEAR(h.identity_coefficient().real(), 1.5, 1e-15);
}

TEST(Grouping, QubitwiseCommuteMatchesLetterDefinition)
{
    // The word-parallel implementation must agree with the per-letter
    // definition, including across the 64-qubit word boundary.
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = (trial % 2 == 0) ? 9 : 70;
        PauliString a(n);
        PauliString b(n);
        for (std::size_t q = 0; q < n; ++q) {
            a.set_letter(q, static_cast<PauliLetter>(rng.uniform_int(0, 3)));
            b.set_letter(q, static_cast<PauliLetter>(rng.uniform_int(0, 3)));
        }
        bool expected = true;
        for (std::size_t q = 0; q < n; ++q) {
            const PauliLetter la = a.letter(q);
            const PauliLetter lb = b.letter(q);
            if (la != PauliLetter::I && lb != PauliLetter::I && la != lb) {
                expected = false;
                break;
            }
        }
        EXPECT_EQ(qubitwise_commute(a, b), expected) << a.to_label()
                                                     << " vs "
                                                     << b.to_label();
    }
}

TEST(Grouping, GroupedAndUngroupedStabilizerEnergiesAgree)
{
    // The expectation engine precompiles through the QWC grouping;
    // grouping is a layout optimization and must not change a single
    // bit of the evaluated energy.
    Rng rng(31);
    const std::size_t n = 8;
    PauliSum op(n);
    for (int t = 0; t < 30; ++t) {
        PauliString p(n);
        for (std::size_t q = 0; q < n; ++q) {
            if (rng.bernoulli(0.6)) {
                continue;
            }
            p.set_letter(q, static_cast<PauliLetter>(rng.uniform_int(1, 3)));
        }
        op.add_term(rng.uniform_real(-1.5, 1.5), p);
    }

    const StabilizerExpectationEngine grouped(
        op, ExpectationEngineOptions{.strategy = EvalStrategy::PerTerm});
    const StabilizerExpectationEngine ungrouped(
        op, ExpectationEngineOptions{.strategy = EvalStrategy::PerTerm,
                                     .use_grouping = false});
    const StabilizerExpectationEngine auto_engine(op);
    EXPECT_GT(grouped.num_groups(), 1u);
    EXPECT_LT(grouped.num_groups(), grouped.num_terms());
    EXPECT_EQ(ungrouped.num_groups(), ungrouped.num_terms());

    for (int trial = 0; trial < 10; ++trial) {
        StabilizerSimulator sim(n);
        Circuit circuit(n);
        for (int g = 0; g < 40; ++g) {
            const auto q = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
            switch (rng.uniform_int(0, 3)) {
              case 0: circuit.h(q); break;
              case 1: circuit.s(q); break;
              case 2: circuit.x(q); break;
              default: circuit.cx(q, (q + 1) % n); break;
            }
        }
        sim.apply_circuit(circuit);
        const double via_rows = sim.expectation(op);
        EXPECT_EQ(grouped.expectation(sim.tableau()), via_rows);
        EXPECT_EQ(ungrouped.expectation(sim.tableau()), via_rows);
        EXPECT_EQ(auto_engine.expectation(sim.tableau()), via_rows);
    }
}

TEST(PauliSum, HermitianChopRejectsComplex)
{
    PauliSum sum(1);
    sum.add_term(std::complex<double>{0.0, 1.0},
                 PauliString::from_label("X"));
    EXPECT_THROW(sum.chop_to_hermitian(), std::invalid_argument);
}

} // namespace
} // namespace cafqa
