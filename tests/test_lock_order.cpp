/**
 * @file
 * Runtime lock-order validator tests (src/common/lock_order_check.cpp).
 * Only meaningful in a `CAFQA_LOCK_ORDER_CHECK=ON` build — the
 * `lock-order` CI lane; elsewhere the suite reduces to one skip.
 *
 * Mutex names are deliberately passed through `const char* const`
 * variables: the static lock-order pass reads names from string
 * literals in the declaration, so these locals stay invisible to it
 * (no duplicate-name or drift findings from a test re-staging the
 * production names) while the runtime validator sees the real names.
 */
#include <gtest/gtest.h>

#include "common/thread_safety.hpp"

namespace {

#if defined(CAFQA_LOCK_ORDER_CHECK)

using cafqa::Mutex;
using cafqa::MutexLock;

// Real manifest names: the committed manifest has jobs_mutex ->
// queue_mutex (a worker inspects queue state while holding its job
// bookkeeping) and no reverse edge.
const char* const kQueue = "queue_mutex";
const char* const kJobs = "jobs_mutex";

TEST(LockOrderRuntime, ManifestOrderIsQuiet)
{
    Mutex jobs{kJobs};
    Mutex queue{kQueue};
    MutexLock outer(jobs);
    MutexLock inner(queue);
    SUCCEED();
}

TEST(LockOrderRuntime, InvertedAcquisitionAbortsWithEdgeNamed)
{
    // The inversion of the manifest edge must die deterministically,
    // naming both endpoints, BEFORE blocking.
    EXPECT_DEATH(
        {
            Mutex jobs{kJobs};
            Mutex queue{kQueue};
            MutexLock outer(queue);
            MutexLock inner(jobs);
        },
        "cafqa lock-order violation: acquisition while holding: "
        "\"queue_mutex\" -> \"jobs_mutex\" has no edge");
}

TEST(LockOrderRuntime, ManualLockPathIsCheckedToo)
{
    // Mutex::lock() (not just the MutexLock wrapper) goes through the
    // same check.
    EXPECT_DEATH(
        {
            Mutex jobs{kJobs};
            Mutex queue{kQueue};
            MutexLock outer(queue);
            jobs.lock();
        },
        "\"queue_mutex\" -> \"jobs_mutex\"");
}

TEST(LockOrderRuntime, UnnamedMutexesSkipTheOrderingCheck)
{
    Mutex anonymous_a;
    Mutex anonymous_b;
    Mutex queue{kQueue};
    MutexLock a(anonymous_a);
    MutexLock q(queue);
    MutexLock b(anonymous_b);
    SUCCEED();
}

TEST(LockOrderRuntime, RelockOfHeldInstanceAborts)
{
    EXPECT_DEATH(
        {
            Mutex anonymous;
            anonymous.lock();
            anonymous.lock();
        },
        "relock of an already-held mutex instance");
}

TEST(LockOrderRuntime, ReleaseUnwindsTheHeldStack)
{
    Mutex jobs{kJobs};
    Mutex queue{kQueue};
    {
        MutexLock outer(queue);
    }
    // queue_mutex is no longer held, so acquiring jobs_mutex is fine.
    MutexLock inner(jobs);
    SUCCEED();
}

TEST(LockOrderRuntime, UnlockRelockDanceIsTracked)
{
    Mutex jobs{kJobs};
    Mutex queue{kQueue};
    MutexLock outer(queue);
    outer.unlock();
    // Not held any more: no queue -> jobs edge is consulted.
    MutexLock inner(jobs);
    SUCCEED();
}

#else // !CAFQA_LOCK_ORDER_CHECK

TEST(LockOrderRuntime, DisabledInThisBuild)
{
    GTEST_SKIP() << "configure with -DCAFQA_LOCK_ORDER_CHECK=ON to "
                    "exercise the runtime lock-order validator";
}

#endif

} // namespace
