/**
 * Telemetry subsystem tests: counter exactness under contention, the
 * histogram's bounded quantile error against a sorted oracle, the
 * Prometheus exposition (escaping, family structure), snapshot
 * determinism, TraceSpan recording, and the global disable switch.
 */
#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "telemetry/metrics.hpp"

using namespace cafqa;
using namespace cafqa::telemetry;

namespace {

/** Exact nearest-rank-with-interpolation percentile over a copy. */
double
oracle_percentile(std::vector<double> values, double q)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const double rank = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double t = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * t;
}

/** Relative quantile error bound: one bucket width each side, i.e.
 *  2^(1/8) - 1 (~9.05%), padded slightly for interpolation at the
 *  oracle's rank boundaries. */
constexpr double kQuantileSlack = 0.10;

} // namespace

TEST(Counter, ConcurrentAddsAreExact)
{
    Counter counter;
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;
    // lint:allow(raw-thread) contention test needs unmanaged threads
    // hammering one counter; the pool would serialize the interesting
    // interleavings away.
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                counter.add();
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(counter.value(), kThreads * kPerThread)
        << "per-thread-slot sharding must lose no increment";
}

TEST(Counter, BulkAddAccumulates)
{
    Counter counter;
    counter.add(7);
    counter.add(0);
    counter.add(35);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndSignedAdd)
{
    Gauge gauge;
    gauge.set(10.0);
    gauge.add(-3.5);
    gauge.add(1.0);
    EXPECT_DOUBLE_EQ(gauge.value(), 7.5);
}

TEST(Histogram, PercentilesTrackSortedOracle)
{
    Histogram histogram;
    Rng rng(2026);
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform over ~6 decades: exercises many octaves the way
        // real latency distributions do.
        const double value = std::pow(10.0, rng.uniform_real(-3.0, 3.0));
        values.push_back(value);
        histogram.observe(value);
    }
    EXPECT_EQ(histogram.count(), values.size());
    for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
        const double oracle = oracle_percentile(values, q);
        const double estimate = histogram.percentile(q);
        EXPECT_NEAR(estimate, oracle, oracle * kQuantileSlack)
            << "q=" << q;
    }
}

TEST(Histogram, BucketBoundariesAreExact)
{
    // A value equal to a bucket's lower bound must land in that bucket
    // (half-open buckets), and the geometry helpers must agree with
    // the indexer at every boundary.
    for (std::size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
        const double lower = Histogram::bucket_lower(b);
        EXPECT_EQ(Histogram::bucket_index(lower), b)
            << "lower bound of bucket " << b;
        EXPECT_GT(Histogram::bucket_upper(b), lower);
    }
    // Underflow and overflow.
    EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
    EXPECT_EQ(Histogram::bucket_index(Histogram::kMinValue / 2.0), 0u);
    EXPECT_EQ(Histogram::bucket_index(1e30),
              Histogram::kBuckets - 1);
    EXPECT_TRUE(std::isinf(
        Histogram::bucket_upper(Histogram::kBuckets - 1)));
}

TEST(Histogram, BoundaryObservationsCountOnce)
{
    Histogram histogram;
    const double boundary = Histogram::bucket_lower(17);
    histogram.observe(boundary);
    const auto counts = histogram.bucket_counts();
    EXPECT_EQ(counts[17], 1u);
    EXPECT_EQ(histogram.count(), 1u);
    EXPECT_DOUBLE_EQ(histogram.sum(), boundary);
}

TEST(TraceSpan, RecordsOnceAndIsIdempotent)
{
    Histogram histogram;
    {
        TraceSpan span(histogram);
        const double elapsed = span.stop();
        EXPECT_GE(elapsed, 0.0);
        EXPECT_EQ(span.stop(), 0.0) << "second stop records nothing";
    }
    EXPECT_EQ(histogram.count(), 1u)
        << "destructor after stop() must not double-record";
}

TEST(TraceSpan, DestructorRecords)
{
    Histogram histogram;
    {
        TraceSpan span(histogram);
    }
    EXPECT_EQ(histogram.count(), 1u);
}

TEST(Registry, RegistrationIsIdempotentPerSeries)
{
    MetricsRegistry registry;
    Counter& a = registry.counter("cafqa_test_total", {{"k", "v"}});
    Counter& b = registry.counter("cafqa_test_total", {{"k", "v"}});
    EXPECT_EQ(&a, &b) << "same name+labels is the same series";
    Counter& c = registry.counter("cafqa_test_total", {{"k", "w"}});
    EXPECT_NE(&a, &c);
    // Label order at the call site never changes series identity.
    Counter& d = registry.counter("cafqa_multi_total",
                                  {{"b", "2"}, {"a", "1"}});
    Counter& e = registry.counter("cafqa_multi_total",
                                  {{"a", "1"}, {"b", "2"}});
    EXPECT_EQ(&d, &e);
}

TEST(Registry, KindConflictThrows)
{
    MetricsRegistry registry;
    registry.counter("cafqa_conflict");
    EXPECT_THROW(registry.gauge("cafqa_conflict"), std::exception);
    EXPECT_THROW(registry.histogram("cafqa_conflict"), std::exception);
}

TEST(Registry, PrometheusEscapesLabelValues)
{
    MetricsRegistry registry;
    registry.counter("cafqa_escape_total",
                     {{"path", "a\\b"}, {"quote", "say \"hi\""},
                      {"nl", "line1\nline2"}})
        .add(3);
    const std::string text = registry.prometheus();
    EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos)
        << "backslash must be doubled:\n" << text;
    EXPECT_NE(text.find("quote=\"say \\\"hi\\\"\""), std::string::npos)
        << "quotes must be escaped:\n" << text;
    EXPECT_NE(text.find("nl=\"line1\\nline2\""), std::string::npos)
        << "newline must become \\n:\n" << text;
    // The exposition body itself must stay one-sample-per-line: no
    // raw newline inside a label value.
    const std::string series = render_series_name(
        "cafqa_escape_total", {{"path", "a\\b"}, {"quote", "say \"hi\""},
                               {"nl", "line1\nline2"}});
    const std::optional<double> sample =
        find_prometheus_sample(text, series);
    ASSERT_TRUE(sample.has_value());
    EXPECT_DOUBLE_EQ(*sample, 3.0);
}

TEST(Registry, PrometheusStructure)
{
    MetricsRegistry registry;
    registry.counter("cafqa_reqs_total", {{"verb", "a"}}, "Requests").add(1);
    registry.counter("cafqa_reqs_total", {{"verb", "b"}}, "Requests").add(2);
    registry.histogram("cafqa_lat_ms", {}, "Latency").observe(1.0);
    const std::string text = registry.prometheus();
    // HELP/TYPE exactly once per family.
    const auto count_of = [&text](const std::string& needle) {
        std::size_t n = 0;
        for (std::size_t at = text.find(needle); at != std::string::npos;
             at = text.find(needle, at + 1)) {
            ++n;
        }
        return n;
    };
    EXPECT_EQ(count_of("# HELP cafqa_reqs_total"), 1u);
    EXPECT_EQ(count_of("# TYPE cafqa_reqs_total counter"), 1u);
    EXPECT_EQ(count_of("# TYPE cafqa_lat_ms histogram"), 1u);
    EXPECT_EQ(count_of("le=\"+Inf\""), 1u)
        << "exactly one +Inf bucket line";
    EXPECT_EQ(find_prometheus_sample(text, "cafqa_lat_ms_count"), 1.0);
    EXPECT_EQ(find_prometheus_sample(text, "cafqa_lat_ms_sum"), 1.0);
    EXPECT_EQ(
        find_prometheus_sample(text, "cafqa_reqs_total{verb=\"b\"}"),
        2.0);
}

TEST(Registry, SnapshotsAreDeterministic)
{
    // Two fresh registries fed the identical seeded workload must
    // render byte-identical exports (ordering is by sorted family and
    // label block, never insertion or address order).
    const auto run = [](MetricsRegistry& registry) {
        Rng rng(77);
        Counter& hits = registry.counter("cafqa_hits_total",
                                         {{"shard", "0"}}, "Hits");
        Gauge& depth = registry.gauge("cafqa_depth", {}, "Depth");
        Histogram& wait =
            registry.histogram("cafqa_wait_ms", {}, "Wait");
        for (int i = 0; i < 500; ++i) {
            hits.add(static_cast<std::uint64_t>(
                rng.uniform_int(0, 3)));
            depth.set(static_cast<double>(rng.uniform_int(0, 64)));
            wait.observe(std::pow(10.0, rng.uniform_real(-2.0, 2.0)));
        }
    };
    MetricsRegistry first;
    MetricsRegistry second;
    run(first);
    run(second);
    EXPECT_EQ(first.prometheus(), second.prometheus());
    EXPECT_EQ(first.json(), second.json());
    // And the snapshot itself is stable across repeated scrapes.
    EXPECT_EQ(first.json(), first.json());
}

TEST(Registry, CallbackGaugeScrapesAndClears)
{
    MetricsRegistry registry;
    double depth = 4.0;
    registry.set_callback_gauge("cafqa_cb_depth", {},
                                [&depth] { return depth; }, "Depth");
    EXPECT_EQ(find_prometheus_sample(registry.prometheus(),
                                     "cafqa_cb_depth"),
              4.0);
    depth = 9.0;
    EXPECT_EQ(find_prometheus_sample(registry.prometheus(),
                                     "cafqa_cb_depth"),
              9.0) << "callback gauges are pulled at scrape time";
    registry.clear_callback_gauge("cafqa_cb_depth", {});
    EXPECT_FALSE(find_prometheus_sample(registry.prometheus(),
                                        "cafqa_cb_depth")
                     .has_value());
}

TEST(Enabled, DisabledRecordingIsANoOp)
{
    ASSERT_TRUE(enabled()) << "tests assume the default-on switch";
    Counter counter;
    Gauge gauge;
    Histogram histogram;
    set_enabled(false);
    counter.add(5);
    gauge.set(1.0);
    histogram.observe(1.0);
    {
        TraceSpan span(histogram);
        EXPECT_GE(span.stop(), 0.0)
            << "spans still time while disabled";
    }
    set_enabled(true);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
    EXPECT_EQ(histogram.count(), 0u);
    counter.add(2);
    EXPECT_EQ(counter.value(), 2u) << "re-enabling resumes recording";
}
