# Pins the lock-order analyzer's driver contract (see
# tools/lint_invariants.cpp and tools/lint/lock_order.hpp):
#   - the injected-inversion fixture pair exits 1 with BOTH cycle
#     endpoints named with file:line evidence,
#   - drift against a manifest (new edge + stale edge) exits 1,
#   - --format=json / --format=github carry the findings,
#   - an unknown option / malformed manifest exits 2.
# Run via ctest:
#   cmake -DLINT=<exe> -DFIXTURE_DIR=<lock_cycle dir> -P lock_order_exit_codes.cmake

if(NOT LINT OR NOT FIXTURE_DIR)
  message(FATAL_ERROR "LINT and FIXTURE_DIR are required")
endif()

function(run_lint out_var code)
  execute_process(COMMAND ${LINT} ${ARGN}
                  RESULT_VARIABLE result
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT result EQUAL ${code})
    message(FATAL_ERROR
            "lint_invariants ${ARGN}: expected exit ${code}, got "
            "'${result}'\nstdout: ${out}\nstderr: ${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

function(expect_contains haystack needle what)
  string(FIND "${haystack}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${what}: expected to find '${needle}' in:\n${haystack}")
  endif()
endfunction()

# Inversion: the ring fixtures form a cycle; both endpoints must be
# named with their file:line evidence.
run_lint(out 1 ${FIXTURE_DIR}/ring_a.cpp ${FIXTURE_DIR}/ring_b.cpp)
expect_contains("${out}" "[lock-cycle]" "cycle rule")
expect_contains("${out}" "\"alpha_mutex\" -> \"beta_mutex\" (${FIXTURE_DIR}/ring_a.cpp:" "first endpoint evidence")
expect_contains("${out}" "\"beta_mutex\" -> \"alpha_mutex\" (${FIXTURE_DIR}/ring_b.cpp:" "second endpoint evidence")

# Drift: ring_a alone against the fixture manifest has one new edge
# and one stale manifest edge.
run_lint(out 1 --lock-manifest=${FIXTURE_DIR}/drift.manifest
         ${FIXTURE_DIR}/ring_a.cpp)
expect_contains("${out}" "[lock-order-drift]" "drift rule")
expect_contains("${out}" "is not in ${FIXTURE_DIR}/drift.manifest" "new edge")
expect_contains("${out}" "stale" "stale edge")

# Output formats carry the same findings.
run_lint(out 1 --format=github ${FIXTURE_DIR}/ring_a.cpp
         ${FIXTURE_DIR}/ring_b.cpp)
expect_contains("${out}" "::error file=" "github format")
expect_contains("${out}" "title=lock-cycle" "github rule title")
run_lint(out 1 --format=json ${FIXTURE_DIR}/ring_a.cpp
         ${FIXTURE_DIR}/ring_b.cpp)
expect_contains("${out}" "\"rule\": \"lock-cycle\"" "json format")

# Usage errors.
run_lint(out 2 --bogus ${FIXTURE_DIR}/ring_a.cpp)
run_lint(out 2 --format=yaml ${FIXTURE_DIR}/ring_a.cpp)
run_lint(out 2 --lock-manifest=${FIXTURE_DIR}/does_not_exist.manifest
         ${FIXTURE_DIR}/ring_a.cpp)
# A source file is not a parseable manifest.
run_lint(out 2 --lock-manifest=${FIXTURE_DIR}/ring_a.cpp
         ${FIXTURE_DIR}/ring_a.cpp)
