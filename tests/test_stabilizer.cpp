// Tests for the stabilizer tableau, including exhaustive cross-validation
// against the dense statevector simulator on random Clifford circuits.
// Because the expectation values of all 4^n Pauli strings fully determine
// an n-qubit state, agreement over all strings is complete state
// tomography — the strongest possible equivalence check.

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/circuit.hpp"
#include "circuit/efficient_su2.hpp"
#include "common/rng.hpp"
#include "stabilizer/stabilizer_simulator.hpp"
#include "stabilizer/tableau.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {
namespace {

constexpr double half_pi = std::numbers::pi / 2.0;

TEST(Tableau, InitialStateIsAllZeros)
{
    Tableau t(3);
    EXPECT_TRUE(t.check_invariants());
    EXPECT_EQ(t.expectation(PauliString::from_label("ZII")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("IZI")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("ZZZ")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("XII")), 0);
    EXPECT_EQ(t.expectation(PauliString::from_label("YII")), 0);
    EXPECT_EQ(t.expectation(PauliString::from_label("-ZII")), -1);
}

TEST(Tableau, BellState)
{
    Tableau t(2);
    t.h(0);
    t.cx(0, 1);
    EXPECT_TRUE(t.check_invariants());
    EXPECT_EQ(t.expectation(PauliString::from_label("XX")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("ZZ")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("YY")), -1);
    EXPECT_EQ(t.expectation(PauliString::from_label("ZI")), 0);
    EXPECT_EQ(t.expectation(PauliString::from_label("XI")), 0);
}

TEST(Tableau, XGateFlipsZ)
{
    Tableau t(1);
    t.x(0);
    EXPECT_EQ(t.expectation(PauliString::from_label("Z")), -1);
    t.h(0);
    EXPECT_EQ(t.expectation(PauliString::from_label("X")), -1);
}

TEST(Tableau, SGateMapsPlusToPlusI)
{
    Tableau t(1);
    t.h(0); // |+>
    EXPECT_EQ(t.expectation(PauliString::from_label("X")), 1);
    t.s(0); // |+i>
    EXPECT_EQ(t.expectation(PauliString::from_label("Y")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("X")), 0);
    t.sdg(0);
    EXPECT_EQ(t.expectation(PauliString::from_label("X")), 1);
}

TEST(Tableau, GhzState)
{
    const std::size_t n = 5;
    Tableau t(n);
    t.h(0);
    for (std::size_t q = 0; q + 1 < n; ++q) {
        t.cx(q, q + 1);
    }
    EXPECT_TRUE(t.check_invariants());
    EXPECT_EQ(t.expectation(PauliString::from_label("XXXXX")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("ZZIII")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("ZIIIZ")), 1);
    EXPECT_EQ(t.expectation(PauliString::from_label("ZIIII")), 0);
    EXPECT_EQ(t.expectation(PauliString::from_label("YYXXX")), -1);
}

TEST(StabilizerSimulator, AngleToSteps)
{
    EXPECT_EQ(StabilizerSimulator::angle_to_steps(0.0), 0);
    EXPECT_EQ(StabilizerSimulator::angle_to_steps(half_pi), 1);
    EXPECT_EQ(StabilizerSimulator::angle_to_steps(2 * half_pi), 2);
    EXPECT_EQ(StabilizerSimulator::angle_to_steps(3 * half_pi), 3);
    EXPECT_EQ(StabilizerSimulator::angle_to_steps(4 * half_pi), 0);
    EXPECT_EQ(StabilizerSimulator::angle_to_steps(-half_pi), 3);
    EXPECT_THROW(StabilizerSimulator::angle_to_steps(1.0),
                 std::invalid_argument);
}

TEST(StabilizerSimulator, AngleToStepsIsRelativeAware)
{
    // Accumulated multiples of pi/2: the double representation of
    // m * (pi/2) carries an absolute error that grows with m and blows
    // past any fixed tolerance, yet the angle is an exact quarter-turn
    // by construction. A relative-aware check must accept every one.
    for (std::int64_t m = 1000000; m < 1000100; ++m) {
        const double angle = static_cast<double>(m) * half_pi;
        EXPECT_EQ(StabilizerSimulator::angle_to_steps(angle),
                  static_cast<int>(m % 4))
            << "m=" << m;
    }
    // ...including negative accumulations.
    EXPECT_EQ(StabilizerSimulator::angle_to_steps(-1000001.0 * half_pi), 3);

    // The other direction: genuinely non-Clifford offsets must still
    // throw, whether the base angle is small...
    EXPECT_THROW(StabilizerSimulator::angle_to_steps(0.01),
                 std::invalid_argument);
    EXPECT_THROW(StabilizerSimulator::angle_to_steps(half_pi + 1e-4),
                 std::invalid_argument);
    // ...or a large accumulated multiple with a real offset on top
    // (the relative slack at 1e6 quarter-turns is ~1e-3 turns, far
    // below the 0.05-turn offset here).
    EXPECT_THROW(
        StabilizerSimulator::angle_to_steps(1000000.0 * half_pi +
                                            0.05 * half_pi),
        std::invalid_argument);
}

TEST(StabilizerSimulator, RejectsTGates)
{
    Circuit c(1);
    c.t(0);
    StabilizerSimulator sim(1);
    EXPECT_THROW(sim.apply_circuit(c), std::invalid_argument);
}

TEST(StabilizerSimulator, MicrobenchmarkCliffordPoints)
{
    // <XX> on the Fig. 5 ansatz equals sin(theta):
    // steps {0,1,2,3} -> {0, +1, 0, -1}.
    const Circuit ansatz = make_microbenchmark_ansatz();
    const PauliSum xx = PauliSum::from_terms(2, {{1.0, "XX"}});
    const int expected[4] = {0, 1, 0, -1};
    for (int k = 0; k < 4; ++k) {
        StabilizerSimulator sim(2);
        sim.apply_circuit_steps(ansatz, {k});
        EXPECT_NEAR(sim.expectation(xx), expected[k], 1e-12) << "k=" << k;
    }
}

/**
 * Property test: a random Clifford circuit applied both to the tableau and
 * to the statevector must give identical expectations for every Pauli
 * string on n qubits (full tomographic equivalence).
 */
class CliffordCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CliffordCrossValidation, AllPauliExpectationsMatch)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 3;

    Circuit circuit(n);
    const int gate_count = 30;
    for (int g = 0; g < gate_count; ++g) {
        const int choice = static_cast<int>(rng.uniform_int(0, 12));
        const auto q = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        auto q2 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (q2 == q) {
            q2 = (q + 1) % n;
        }
        const int k = static_cast<int>(rng.uniform_int(0, 3));
        switch (choice) {
          case 0: circuit.h(q); break;
          case 1: circuit.s(q); break;
          case 2: circuit.sdg(q); break;
          case 3: circuit.x(q); break;
          case 4: circuit.y(q); break;
          case 5: circuit.z(q); break;
          case 6: circuit.cx(q, q2); break;
          case 7: circuit.rx(q, k * half_pi); break;
          case 8: circuit.ry(q, k * half_pi); break;
          case 9: circuit.cz(q, q2); break;
          case 10: circuit.swap(q, q2); break;
          case 11: circuit.rzz(q, q2, k * half_pi); break;
          default: circuit.rz(q, k * half_pi); break;
        }
    }

    StabilizerSimulator tab(n);
    tab.apply_circuit(circuit);
    EXPECT_TRUE(tab.tableau().check_invariants());

    Statevector psi(n);
    psi.apply_circuit(circuit);

    // Enumerate all 4^n Pauli strings.
    std::size_t num_paulis = 1;
    for (std::size_t q = 0; q < n; ++q) {
        num_paulis *= 4;
    }
    for (std::size_t code = 0; code < num_paulis; ++code) {
        PauliString p(n);
        std::size_t rest = code;
        for (std::size_t q = 0; q < n; ++q) {
            p.set_letter(q, static_cast<PauliLetter>(rest % 4));
            rest /= 4;
        }
        const int tab_value = tab.expectation(p);
        const Complex sv_value = psi.expectation(p);
        EXPECT_NEAR(sv_value.imag(), 0.0, 1e-10);
        EXPECT_NEAR(sv_value.real(), tab_value, 1e-10)
            << "Pauli " << p.to_label();
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, CliffordCrossValidation,
                         ::testing::Range(0, 20));

/** Parameterized rotations via integer steps match bound-angle circuits. */
TEST(StabilizerSimulator, StepsMatchBoundAngles)
{
    const std::size_t n = 4;
    const Circuit ansatz = make_efficient_su2(n);
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<int> steps(ansatz.num_params());
        std::vector<double> angles(ansatz.num_params());
        for (std::size_t i = 0; i < steps.size(); ++i) {
            steps[i] = static_cast<int>(rng.uniform_int(0, 3));
            angles[i] = steps[i] * half_pi;
        }
        StabilizerSimulator a(n);
        a.apply_circuit_steps(ansatz, steps);
        StabilizerSimulator b(n);
        b.apply_circuit(ansatz, angles);
        Rng prng(trial);
        for (int probe = 0; probe < 50; ++probe) {
            PauliString p(n);
            for (std::size_t q = 0; q < n; ++q) {
                p.set_letter(q,
                             static_cast<PauliLetter>(prng.uniform_int(0, 3)));
            }
            EXPECT_EQ(a.expectation(p), b.expectation(p));
        }
    }
}

TEST(StabilizerSimulator, LargeSystemSmoke)
{
    // 80 qubits crosses the 64-bit word boundary; a GHZ-like circuit is
    // still exactly simulable and exposes any word-indexing bugs.
    const std::size_t n = 80;
    StabilizerSimulator sim(n);
    Circuit c(n);
    c.h(0);
    for (std::size_t q = 0; q + 1 < n; ++q) {
        c.cx(q, q + 1);
    }
    sim.apply_circuit(c);

    PauliString all_x(n);
    for (std::size_t q = 0; q < n; ++q) {
        all_x.set_letter(q, PauliLetter::X);
    }
    EXPECT_EQ(sim.expectation(all_x), 1);

    PauliString z_pair(n);
    z_pair.set_letter(0, PauliLetter::Z);
    z_pair.set_letter(79, PauliLetter::Z);
    EXPECT_EQ(sim.expectation(z_pair), 1);

    PauliString single_z(n);
    single_z.set_letter(40, PauliLetter::Z);
    EXPECT_EQ(sim.expectation(single_z), 0);
}

} // namespace
} // namespace cafqa
