/**
 * @file
 * Linter self-tests: every rule must fire on its fixture, the clean
 * fixture (which exercises the `lint:allow` escape hatch) must pass,
 * and the lexer must ignore rule tokens inside comments and strings.
 * The live tree check (`lint_invariants src/`) runs as its own ctest
 * (`lint_tree`); these tests pin the rules' behaviour instead.
 */
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/linter.hpp"
#include "lint/lock_order.hpp"

namespace {

using cafqa::lint::FileReport;
using cafqa::lint::Finding;
using cafqa::lint::lint_file;
using cafqa::lint::lint_source;

std::string fixture(const std::string& name)
{
    return std::string(CAFQA_LINT_FIXTURE_DIR) + "/" + name;
}

cafqa::lint::SourceFile read_fixture(const std::string& name)
{
    const std::string path = fixture(name);
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return {path, buffer.str()};
}

std::vector<std::string> rules_hit(const FileReport& report)
{
    std::vector<std::string> rules;
    for (const Finding& finding : report.findings) {
        rules.push_back(finding.rule);
    }
    return rules;
}

std::size_t count_rule(const FileReport& report, const std::string& rule)
{
    const std::vector<std::string> rules = rules_hit(report);
    return static_cast<std::size_t>(
        std::count(rules.begin(), rules.end(), rule));
}

TEST(LintFixtures, UnseededRngFires)
{
    const FileReport report = lint_file(fixture("bad_rng.cpp"));
    EXPECT_EQ(count_rule(report, "unseeded-rng"), 3u)
        << "random_device decl, srand call, rand call";
}

TEST(LintFixtures, RawThreadFires)
{
    const FileReport report = lint_file(fixture("bad_thread.cpp"));
    EXPECT_EQ(count_rule(report, "raw-thread"), 1u);
}

TEST(LintFixtures, UnorderedIterFires)
{
    const FileReport report = lint_file(fixture("bad_unordered.cpp"));
    // Multi-line member decl with attribute macro + unordered_set.
    EXPECT_EQ(count_rule(report, "unordered-iter"), 2u);
}

TEST(LintFixtures, NakedMutexFires)
{
    const FileReport report = lint_file(fixture("bad_mutex.cpp"));
    EXPECT_EQ(count_rule(report, "naked-mutex"), 3u)
        << "mutex, condition_variable, shared_mutex";
}

TEST(LintFixtures, CatchSwallowFires)
{
    const FileReport report = lint_file(fixture("bad_catch.cpp"));
    EXPECT_EQ(count_rule(report, "catch-swallow"), 2u);
}

TEST(LintFixtures, MalformedAllowsAreFindings)
{
    const FileReport report = lint_file(fixture("bad_allow.cpp"));
    EXPECT_EQ(count_rule(report, "bad-allow"), 2u)
        << "one reason-less allow, one unknown-rule allow";
    // The reason-less allow must NOT suppress the underlying finding.
    EXPECT_EQ(count_rule(report, "naked-mutex"), 2u);
    EXPECT_EQ(report.allows_used, 0u);
}

TEST(LintFixtures, CleanFileWithJustifiedAllowsPasses)
{
    const FileReport report = lint_file(fixture("clean.cpp"));
    EXPECT_TRUE(report.findings.empty())
        << (report.findings.empty()
                ? ""
                : report.findings.front().rule + ": " +
                      report.findings.front().message);
    EXPECT_EQ(report.allows_used, 2u)
        << "naked-mutex interop + unordered-iter fold";
}

TEST(LintFixtures, MissingFileIsIoError)
{
    const FileReport report = lint_file(fixture("does_not_exist.cpp"));
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "io-error");
}

TEST(LintRules, CommentsAndStringsDoNotTrip)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "// std::mutex in a comment\n"
        "/* std::thread rand() */\n"
        "const char* s = \"std::condition_variable\";\n"
        "const char* r = R\"(std::random_device)\";\n"
        "char c = ':';\n"
        "int big = 1'000'000;\n");
    EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, TrailingAllowSuppressesSameLine)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "#include <mutex>\n"
        "std::mutex m; // lint:allow(naked-mutex) interop handle\n");
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.allows_used, 1u);
}

TEST(LintRules, CommentLineAllowSuppressesNextCodeLine)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "// lint:allow(raw-thread) this reason wraps over two\n"
        "// whole comment lines before the code.\n"
        "std::thread t;\n");
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.allows_used, 1u);
}

TEST(LintRules, AllowForDifferentRuleDoesNotSuppress)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "std::thread t; // lint:allow(naked-mutex) wrong rule\n");
    EXPECT_EQ(count_rule(report, "raw-thread"), 1u);
}

TEST(LintRules, PathExemptions)
{
    // thread_pool and server/ may use std::thread ...
    EXPECT_TRUE(lint_source("src/common/thread_pool.cpp",
                            "std::thread t;\n")
                    .findings.empty());
    EXPECT_TRUE(lint_source("src/server/job_server.cpp",
                            "std::thread t;\n")
                    .findings.empty());
    // ... and only thread_safety.hpp may name std::mutex.
    EXPECT_TRUE(lint_source("src/common/thread_safety.hpp",
                            "std::mutex m;\n")
                    .findings.empty());
    EXPECT_EQ(count_rule(lint_source("src/core/pipeline.cpp",
                                     "std::mutex m;\n"),
                         "naked-mutex"),
              1u);
}

TEST(LintRules, CatchThatHandlesIsFine)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "void f() {\n"
        "  try { g(); } catch (...) { throw; }\n"
        "  try { g(); } catch (...) {\n"
        "    error = std::current_exception();\n"
        "  }\n"
        "}\n");
    EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, UnorderedDeclInHeaderCaughtInSource)
{
    // The real layout: members are declared unordered in a header but
    // iterated in the matching .cpp. The driver passes the cross-file
    // name union in.
    const auto names = cafqa::lint::unordered_container_names(
        "#include <unordered_map>\n"
        "struct S {\n"
        "  std::unordered_map<std::uint64_t, std::thread> readers_\n"
        "      GUARDED_BY(mutex_);\n"
        "};\n");
    ASSERT_EQ(names.count("readers_"), 1u);
    const FileReport report = lint_source(
        "src/core/widget.cpp",
        "void f(S& s) { for (auto& [id, r] : s.readers_) { use(r); } }\n",
        names);
    EXPECT_EQ(count_rule(report, "unordered-iter"), 1u);
}

TEST(LintRules, ClassicForOverUnorderedIndexIsFine)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> table;\n"
        "void f(const std::vector<int>& keys) {\n"
        "  for (std::size_t i = 0; i < keys.size(); ++i) {\n"
        "    table[keys[i]]++;\n"
        "  }\n"
        "  for (int k : keys) { table[k]++; }\n"
        "}\n");
    EXPECT_TRUE(report.findings.empty())
        << "indexed access and range-for over a vector are fine";
}

TEST(LintFixtures, WallClockInLogicFires)
{
    const FileReport report = lint_file(fixture("bad_wallclock.cpp"));
    EXPECT_EQ(count_rule(report, "wall-clock-in-logic"), 1u);
}

TEST(LintRules, WallClockExemptInTelemetryAndBench)
{
    EXPECT_TRUE(lint_source("src/telemetry/metrics.cpp",
                            "auto t = std::chrono::system_clock::now();\n")
                    .findings.empty());
    EXPECT_TRUE(lint_source("bench/server_load.cpp",
                            "auto t = std::chrono::system_clock::now();\n")
                    .findings.empty());
}

TEST(LintRules, WallClockCarveOutIsPathExact)
{
    // Only src/telemetry/ itself is sanctioned; a file that merely has
    // "telemetry" in its name must route timestamps through
    // telemetry::wall_timestamp_seconds() like everything else.
    EXPECT_EQ(count_rule(lint_source(
                             "src/common/telemetry.cpp",
                             "auto t = std::chrono::system_clock::now();\n"),
                         "wall-clock-in-logic"),
              1u);
    const FileReport report =
        lint_file(fixture("bad_wallclock_telemetry.cpp"));
    EXPECT_EQ(count_rule(report, "wall-clock-in-logic"), 1u)
        << "a telemetry-named file outside src/telemetry/ is not exempt";
}

TEST(LintRules, HardwareConcurrencyQueryIsNotARawThread)
{
    const FileReport report = lint_source(
        "src/core/widget.cpp",
        "auto n = std::thread::hardware_concurrency();\n");
    EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, AllowMentionsOutsideLineCommentsAreNotDirectives)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "/* docs may say lint:allow(<rule>) without tripping */\n"
        "const char* s = \"lint:allow(nonsense\";\n");
    EXPECT_TRUE(report.findings.empty());
}

TEST(LockPass, CycleDetectedAcrossFiles)
{
    const auto graph = cafqa::lint::analyze_lock_order(
        {read_fixture("lock_cycle/ring_a.cpp"),
         read_fixture("lock_cycle/ring_b.cpp")});
    ASSERT_EQ(graph.mutexes.size(), 2u);
    ASSERT_EQ(graph.edges.size(), 2u);
    const auto cycles = cafqa::lint::find_lock_cycles(graph, nullptr);
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0].rule, "lock-cycle");
    // Both endpoints of the inversion must be named with evidence.
    EXPECT_NE(cycles[0].message.find("\"alpha_mutex\" -> \"beta_mutex\" "
                                     "(" +
                                     fixture("lock_cycle/ring_a.cpp")),
              std::string::npos)
        << cycles[0].message;
    EXPECT_NE(cycles[0].message.find("\"beta_mutex\" -> \"alpha_mutex\" "
                                     "(" +
                                     fixture("lock_cycle/ring_b.cpp")),
              std::string::npos)
        << cycles[0].message;
}

TEST(LockPass, ManifestDriftBothWays)
{
    const auto graph = cafqa::lint::analyze_lock_order(
        {read_fixture("lock_cycle/ring_a.cpp")});
    const auto manifest_file = read_fixture("lock_cycle/drift.manifest");
    cafqa::lint::LockManifest manifest;
    std::string error;
    ASSERT_TRUE(cafqa::lint::parse_lock_manifest(manifest_file.text,
                                                 manifest, error))
        << error;
    const auto drift = cafqa::lint::check_lock_manifest(
        graph, manifest, manifest_file.path);
    ASSERT_EQ(drift.size(), 2u);
    // One new (undeclared) edge, one stale manifest edge.
    EXPECT_NE(drift[0].message.find("\"alpha_mutex\" -> \"beta_mutex\""),
              std::string::npos);
    EXPECT_NE(drift[1].message.find("stale"), std::string::npos);
}

TEST(LockPass, ManifestRoundTripIsClean)
{
    const auto graph = cafqa::lint::analyze_lock_order(
        {read_fixture("lock_cycle/ring_a.cpp")});
    const std::string rendered =
        cafqa::lint::render_lock_manifest(graph, nullptr);
    cafqa::lint::LockManifest manifest;
    std::string error;
    ASSERT_TRUE(cafqa::lint::parse_lock_manifest(rendered, manifest, error))
        << error;
    EXPECT_TRUE(cafqa::lint::check_lock_manifest(graph, manifest,
                                                 "round.manifest")
                    .empty());
    EXPECT_EQ(manifest.mutexes.size(), 2u);
    EXPECT_EQ(manifest.static_edges.size(), 1u);
}

TEST(LockPass, DynamicEdgesSurviveRegenerationAndFeedCycles)
{
    const auto graph = cafqa::lint::analyze_lock_order(
        {read_fixture("lock_cycle/ring_a.cpp")});
    cafqa::lint::LockManifest previous;
    std::string error;
    ASSERT_TRUE(cafqa::lint::parse_lock_manifest(
        "mutex alpha_mutex\nmutex beta_mutex\n"
        "dynamic beta_mutex -> alpha_mutex\n",
        previous, error));
    // Regeneration carries the dynamic edge forward...
    const std::string rendered =
        cafqa::lint::render_lock_manifest(graph, &previous);
    EXPECT_NE(rendered.find("dynamic beta_mutex -> alpha_mutex"),
              std::string::npos);
    // ...and the cycle check sees discovered ∪ manifest edges.
    const auto cycles = cafqa::lint::find_lock_cycles(graph, &previous);
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_NE(cycles[0].message.find("(manifest)"), std::string::npos);
}

TEST(LockPass, BlockingUnderLockFixture)
{
    const auto source = read_fixture("bad_blocking.cpp");
    const auto graph = cafqa::lint::analyze_lock_order({source});
    const auto it = graph.file_findings.find(source.path);
    ASSERT_NE(it, graph.file_findings.end());
    std::size_t blocking = 0;
    for (const auto& finding : it->second) {
        blocking += finding.rule == "blocking-under-lock" ? 1 : 0;
    }
    EXPECT_EQ(blocking, 2u) << "join under lock + wait on other mutex";
}

TEST(LockPass, FileFindingsAreSuppressibleViaLintAllow)
{
    const cafqa::lint::SourceFile source{
        "src/core/widget.cpp",
        "void f() {\n"
        "  cafqa::MutexLock lock(state_mutex_);\n"
        "  // lint:allow(blocking-under-lock) bounded by a timeout\n"
        "  worker_.join();\n"
        "}\n"
        "cafqa::Mutex state_mutex_{\"state_mutex\"};\n"};
    const auto graph = cafqa::lint::analyze_lock_order({source});
    const auto it = graph.file_findings.find(source.path);
    ASSERT_NE(it, graph.file_findings.end());
    const FileReport report =
        lint_source(source.path, source.text, {}, it->second);
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.allows_used, 1u);
}

TEST(LockPass, NamingConventionsEnforced)
{
    const cafqa::lint::SourceFile source{
        "src/core/widget.cpp",
        "cafqa::Mutex anon_mutex_;\n"
        "cafqa::Mutex odd_mutex_{\"completely_else\"};\n"
        "cafqa::Mutex twin_mutex_{\"twin_mutex\"};\n"
        "cafqa::Mutex other_twin_{\"twin_mutex\"};\n"};
    const auto graph = cafqa::lint::analyze_lock_order({source});
    const auto it = graph.file_findings.find(source.path);
    ASSERT_NE(it, graph.file_findings.end());
    std::vector<std::string> rules;
    for (const auto& finding : it->second) {
        rules.push_back(finding.rule);
    }
    EXPECT_NE(std::find(rules.begin(), rules.end(), "unnamed-mutex"),
              rules.end());
    EXPECT_NE(std::find(rules.begin(), rules.end(), "mutex-name-mismatch"),
              rules.end());
    EXPECT_NE(std::find(rules.begin(), rules.end(), "duplicate-mutex"),
              rules.end());
}

TEST(LockPass, RequiresSeedsInterproceduralEdges)
{
    // push() holds queue_mutex and calls push_locked(), whose
    // CAFQA_REQUIRES seeds the held set; notify() then acquires
    // cv_mutex inside push_locked, so the closure must produce
    // queue_mutex -> cv_mutex.
    const cafqa::lint::SourceFile source{
        "src/core/widget.cpp",
        "struct Q {\n"
        "  void push() {\n"
        "    cafqa::MutexLock lock(queue_mutex_);\n"
        "    push_locked();\n"
        "  }\n"
        "  void push_locked() CAFQA_REQUIRES(queue_mutex_);\n"
        "  cafqa::Mutex queue_mutex_{\"queue_mutex\"};\n"
        "  cafqa::Mutex cv_mutex_{\"cv_mutex\"};\n"
        "};\n"
        "void Q::push_locked()\n"
        "{\n"
        "  cafqa::MutexLock lock(cv_mutex_);\n"
        "}\n"};
    const auto graph = cafqa::lint::analyze_lock_order({source});
    bool found = false;
    for (const auto& edge : graph.edges) {
        found = found || (edge.from == "queue_mutex" &&
                          edge.to == "cv_mutex");
    }
    EXPECT_TRUE(found);
}

TEST(LockPass, LambdaBodiesDoNotInheritHeldLocks)
{
    // The lambda runs later on another thread: the enclosing lock is
    // NOT held around its body, so no state -> inner edge may appear.
    const cafqa::lint::SourceFile source{
        "src/core/widget.cpp",
        "void f() {\n"
        "  cafqa::MutexLock lock(state_mutex_);\n"
        "  auto task = [] {\n"
        "    cafqa::MutexLock inner(inner_mutex_);\n"
        "  };\n"
        "}\n"
        "cafqa::Mutex state_mutex_{\"state_mutex\"};\n"
        "cafqa::Mutex inner_mutex_{\"inner_mutex\"};\n"};
    const auto graph = cafqa::lint::analyze_lock_order({source});
    EXPECT_TRUE(graph.edges.empty());
}

TEST(LockPass, UnlockRelockDance)
{
    // Between unlock() and lock() the mutex is not held, so only the
    // re-acquisition after lock() sees the second mutex... and the
    // second acquisition while unlocked produces no edge.
    const cafqa::lint::SourceFile source{
        "src/core/widget.cpp",
        "void f() {\n"
        "  cafqa::MutexLock lock(a_mutex_);\n"
        "  lock.unlock();\n"
        "  cafqa::MutexLock other(b_mutex_);\n"
        "}\n"
        "cafqa::Mutex a_mutex_{\"a_mutex\"};\n"
        "cafqa::Mutex b_mutex_{\"b_mutex\"};\n"};
    const auto graph = cafqa::lint::analyze_lock_order({source});
    EXPECT_TRUE(graph.edges.empty());
}

} // namespace
