/**
 * @file
 * Linter self-tests: every rule must fire on its fixture, the clean
 * fixture (which exercises the `lint:allow` escape hatch) must pass,
 * and the lexer must ignore rule tokens inside comments and strings.
 * The live tree check (`lint_invariants src/`) runs as its own ctest
 * (`lint_tree`); these tests pin the rules' behaviour instead.
 */
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/linter.hpp"

namespace {

using cafqa::lint::FileReport;
using cafqa::lint::Finding;
using cafqa::lint::lint_file;
using cafqa::lint::lint_source;

std::string fixture(const std::string& name)
{
    return std::string(CAFQA_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<std::string> rules_hit(const FileReport& report)
{
    std::vector<std::string> rules;
    for (const Finding& finding : report.findings) {
        rules.push_back(finding.rule);
    }
    return rules;
}

std::size_t count_rule(const FileReport& report, const std::string& rule)
{
    const std::vector<std::string> rules = rules_hit(report);
    return static_cast<std::size_t>(
        std::count(rules.begin(), rules.end(), rule));
}

TEST(LintFixtures, UnseededRngFires)
{
    const FileReport report = lint_file(fixture("bad_rng.cpp"));
    EXPECT_EQ(count_rule(report, "unseeded-rng"), 3u)
        << "random_device decl, srand call, rand call";
}

TEST(LintFixtures, RawThreadFires)
{
    const FileReport report = lint_file(fixture("bad_thread.cpp"));
    EXPECT_EQ(count_rule(report, "raw-thread"), 1u);
}

TEST(LintFixtures, UnorderedIterFires)
{
    const FileReport report = lint_file(fixture("bad_unordered.cpp"));
    // Multi-line member decl with attribute macro + unordered_set.
    EXPECT_EQ(count_rule(report, "unordered-iter"), 2u);
}

TEST(LintFixtures, NakedMutexFires)
{
    const FileReport report = lint_file(fixture("bad_mutex.cpp"));
    EXPECT_EQ(count_rule(report, "naked-mutex"), 3u)
        << "mutex, condition_variable, shared_mutex";
}

TEST(LintFixtures, CatchSwallowFires)
{
    const FileReport report = lint_file(fixture("bad_catch.cpp"));
    EXPECT_EQ(count_rule(report, "catch-swallow"), 2u);
}

TEST(LintFixtures, MalformedAllowsAreFindings)
{
    const FileReport report = lint_file(fixture("bad_allow.cpp"));
    EXPECT_EQ(count_rule(report, "bad-allow"), 2u)
        << "one reason-less allow, one unknown-rule allow";
    // The reason-less allow must NOT suppress the underlying finding.
    EXPECT_EQ(count_rule(report, "naked-mutex"), 2u);
    EXPECT_EQ(report.allows_used, 0u);
}

TEST(LintFixtures, CleanFileWithJustifiedAllowsPasses)
{
    const FileReport report = lint_file(fixture("clean.cpp"));
    EXPECT_TRUE(report.findings.empty())
        << (report.findings.empty()
                ? ""
                : report.findings.front().rule + ": " +
                      report.findings.front().message);
    EXPECT_EQ(report.allows_used, 2u)
        << "naked-mutex interop + unordered-iter fold";
}

TEST(LintFixtures, MissingFileIsIoError)
{
    const FileReport report = lint_file(fixture("does_not_exist.cpp"));
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "io-error");
}

TEST(LintRules, CommentsAndStringsDoNotTrip)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "// std::mutex in a comment\n"
        "/* std::thread rand() */\n"
        "const char* s = \"std::condition_variable\";\n"
        "const char* r = R\"(std::random_device)\";\n"
        "char c = ':';\n"
        "int big = 1'000'000;\n");
    EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, TrailingAllowSuppressesSameLine)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "#include <mutex>\n"
        "std::mutex m; // lint:allow(naked-mutex) interop handle\n");
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.allows_used, 1u);
}

TEST(LintRules, CommentLineAllowSuppressesNextCodeLine)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "// lint:allow(raw-thread) this reason wraps over two\n"
        "// whole comment lines before the code.\n"
        "std::thread t;\n");
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.allows_used, 1u);
}

TEST(LintRules, AllowForDifferentRuleDoesNotSuppress)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "std::thread t; // lint:allow(naked-mutex) wrong rule\n");
    EXPECT_EQ(count_rule(report, "raw-thread"), 1u);
}

TEST(LintRules, PathExemptions)
{
    // thread_pool and server/ may use std::thread ...
    EXPECT_TRUE(lint_source("src/common/thread_pool.cpp",
                            "std::thread t;\n")
                    .findings.empty());
    EXPECT_TRUE(lint_source("src/server/job_server.cpp",
                            "std::thread t;\n")
                    .findings.empty());
    // ... and only thread_safety.hpp may name std::mutex.
    EXPECT_TRUE(lint_source("src/common/thread_safety.hpp",
                            "std::mutex m;\n")
                    .findings.empty());
    EXPECT_EQ(count_rule(lint_source("src/core/pipeline.cpp",
                                     "std::mutex m;\n"),
                         "naked-mutex"),
              1u);
}

TEST(LintRules, CatchThatHandlesIsFine)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "void f() {\n"
        "  try { g(); } catch (...) { throw; }\n"
        "  try { g(); } catch (...) {\n"
        "    error = std::current_exception();\n"
        "  }\n"
        "}\n");
    EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, UnorderedDeclInHeaderCaughtInSource)
{
    // The real layout: members are declared unordered in a header but
    // iterated in the matching .cpp. The driver passes the cross-file
    // name union in.
    const auto names = cafqa::lint::unordered_container_names(
        "#include <unordered_map>\n"
        "struct S {\n"
        "  std::unordered_map<std::uint64_t, std::thread> readers_\n"
        "      GUARDED_BY(mutex_);\n"
        "};\n");
    ASSERT_EQ(names.count("readers_"), 1u);
    const FileReport report = lint_source(
        "src/core/widget.cpp",
        "void f(S& s) { for (auto& [id, r] : s.readers_) { use(r); } }\n",
        names);
    EXPECT_EQ(count_rule(report, "unordered-iter"), 1u);
}

TEST(LintRules, ClassicForOverUnorderedIndexIsFine)
{
    const FileReport report = lint_source(
        "buf.cpp",
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> table;\n"
        "void f(const std::vector<int>& keys) {\n"
        "  for (std::size_t i = 0; i < keys.size(); ++i) {\n"
        "    table[keys[i]]++;\n"
        "  }\n"
        "  for (int k : keys) { table[k]++; }\n"
        "}\n");
    EXPECT_TRUE(report.findings.empty())
        << "indexed access and range-for over a vector are fine";
}

} // namespace
