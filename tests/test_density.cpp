// Tests for the density-matrix simulator and noise channels.

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/efficient_su2.hpp"
#include "common/rng.hpp"
#include "density/noise_model.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {
namespace {

Circuit
random_circuit(std::size_t n, int gates, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n);
    for (int g = 0; g < gates; ++g) {
        const auto q = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        auto q2 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (q2 == q) {
            q2 = (q + 1) % n;
        }
        switch (rng.uniform_int(0, 5)) {
          case 0: c.h(q); break;
          case 1: c.s(q); break;
          case 2: c.rx(q, rng.uniform_real(0, 6.28)); break;
          case 3: c.ry(q, rng.uniform_real(0, 6.28)); break;
          case 4: c.cx(q, q2); break;
          default: c.cz(q, q2); break;
        }
    }
    return c;
}

TEST(DensityMatrix, PureEvolutionMatchesStatevector)
{
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const std::size_t n = 3;
        const Circuit c = random_circuit(n, 25, seed);

        DensityMatrix rho(n);
        Statevector psi(n);
        for (const auto& op : c.ops()) {
            rho.apply(op);
        }
        psi.apply_circuit(c);

        EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
        EXPECT_NEAR(rho.purity(), 1.0, 1e-10);

        Rng prng(seed + 100);
        for (int probe = 0; probe < 40; ++probe) {
            PauliString p(n);
            for (std::size_t q = 0; q < n; ++q) {
                p.set_letter(q,
                             static_cast<PauliLetter>(prng.uniform_int(0, 3)));
            }
            EXPECT_NEAR(rho.expectation(p).real(),
                        psi.expectation(p).real(), 1e-10)
                << p.to_label();
            EXPECT_NEAR(rho.expectation(p).imag(), 0.0, 1e-10);
        }
    }
}

TEST(DensityMatrix, DepolarizingShrinksBloch)
{
    DensityMatrix rho(1);
    rho.apply(GateOp{GateKind::H, 0, 0, -1, 0.0});
    const double p = 0.3;
    rho.depolarize_1q(0, p);
    // <X> shrinks by exactly (1 - 4p/3).
    EXPECT_NEAR(rho.expectation(PauliString::from_label("X")).real(),
                1.0 - 4.0 * p / 3.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, TwoQubitDepolarizingShrinksCorrelators)
{
    DensityMatrix rho(2);
    rho.apply(GateOp{GateKind::H, 0, 0, -1, 0.0});
    rho.apply(GateOp{GateKind::CX, 0, 1, -1, 0.0});
    const double p = 0.15;
    rho.depolarize_2q(0, 1, p);
    // Non-identity two-qubit Paulis shrink by (1 - 16p/15).
    EXPECT_NEAR(rho.expectation(PauliString::from_label("XX")).real(),
                1.0 - 16.0 * p / 15.0, 1e-12);
    EXPECT_NEAR(rho.expectation(PauliString::from_label("ZZ")).real(),
                1.0 - 16.0 * p / 15.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed)
{
    DensityMatrix rho(1);
    rho.apply(GateOp{GateKind::H, 0, 0, -1, 0.0});
    rho.depolarize_1q(0, 0.75); // p = 3/4 is the fully mixing point
    EXPECT_NEAR(rho.expectation(PauliString::from_label("X")).real(), 0.0,
                1e-12);
    EXPECT_NEAR(rho.expectation(PauliString::from_label("Z")).real(), 0.0,
                1e-12);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingFixedPoint)
{
    DensityMatrix rho(1);
    rho.apply(GateOp{GateKind::X, 0, 0, -1, 0.0}); // |1>
    rho.amplitude_damp(0, 0.4);
    // <Z> = -(1 - gamma) + gamma = 2 gamma - 1.
    EXPECT_NEAR(rho.expectation(PauliString::from_label("Z")).real(),
                2.0 * 0.4 - 1.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);

    // |0> is a fixed point.
    DensityMatrix zero(1);
    zero.amplitude_damp(0, 0.9);
    EXPECT_NEAR(zero.expectation(PauliString::from_label("Z")).real(), 1.0,
                1e-12);
}

TEST(NoiseModel, PresetsAreOrdered)
{
    const NoiseModel casablanca = noise_model_casablanca();
    const NoiseModel manhattan = noise_model_manhattan();
    EXPECT_TRUE(casablanca.enabled());
    EXPECT_TRUE(manhattan.enabled());
    EXPECT_LT(casablanca.depolarizing_2q, manhattan.depolarizing_2q);
}

TEST(NoiseModel, MicrobenchmarkNoiseFloors)
{
    // Fig. 5: the ideal minimum of <XX> is -1 at theta = 3pi/2; the noisy
    // backends must be strictly above it, with Manhattan above
    // Casablanca (heavier noise -> shallower minimum).
    const Circuit ansatz = make_microbenchmark_ansatz();
    const PauliSum xx = PauliSum::from_terms(2, {{1.0, "XX"}});
    const std::vector<double> theta = {3.0 * std::numbers::pi / 2.0};

    const DensityMatrix ideal =
        simulate_noisy(ansatz, theta, NoiseModel{});
    const DensityMatrix casa =
        simulate_noisy(ansatz, theta, noise_model_casablanca());
    const DensityMatrix manh =
        simulate_noisy(ansatz, theta, noise_model_manhattan());

    EXPECT_NEAR(ideal.expectation(xx), -1.0, 1e-10);
    const double e_casa = casa.expectation(xx);
    const double e_manh = manh.expectation(xx);
    EXPECT_GT(e_casa, -1.0);
    EXPECT_GT(e_manh, e_casa);
    // Floors within the neighborhoods the paper reports.
    EXPECT_NEAR(e_casa, -0.85, 0.07);
    EXPECT_NEAR(e_manh, -0.70, 0.07);
}

TEST(DensityMatrix, KrausChannelTracePreserving)
{
    DensityMatrix rho(2);
    rho.apply(GateOp{GateKind::H, 0, 0, -1, 0.0});
    rho.apply(GateOp{GateKind::CX, 0, 1, -1, 0.0});
    for (int round = 0; round < 3; ++round) {
        rho.depolarize_1q(0, 0.05);
        rho.depolarize_2q(0, 1, 0.02);
        rho.amplitude_damp(1, 0.03);
    }
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    EXPECT_LE(rho.purity(), 1.0 + 1e-12);
    EXPECT_GE(rho.purity(), 0.25 - 1e-12);
}

} // namespace
} // namespace cafqa
