// Integration tests for the CAFQA core: evaluators, the search driver,
// the HF baseline, the Clifford+kT extension, and post-CAFQA tuning.

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/efficient_su2.hpp"
#include "common/rng.hpp"
#include "core/cafqa_driver.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/evaluator.hpp"
#include "core/hartree_fock_baseline.hpp"
#include "core/vqa_tuner.hpp"
#include "problems/maxcut.hpp"
#include "problems/molecule_factory.hpp"
#include "statevector/lanczos.hpp"

namespace cafqa {
namespace {

TEST(CliffordAnsatz, StepsToAngles)
{
    const auto angles = steps_to_angles({0, 1, 2, 3, 5, -1});
    EXPECT_NEAR(angles[0], 0.0, 1e-15);
    EXPECT_NEAR(angles[1], std::numbers::pi / 2, 1e-15);
    EXPECT_NEAR(angles[2], std::numbers::pi, 1e-15);
    EXPECT_NEAR(angles[3], 3 * std::numbers::pi / 2, 1e-15);
    EXPECT_NEAR(angles[4], std::numbers::pi / 2, 1e-15);
    EXPECT_NEAR(angles[5], 3 * std::numbers::pi / 2, 1e-15);
}

TEST(CliffordAnsatz, ValidationRejectsTGates)
{
    Circuit c(1);
    c.t(0);
    EXPECT_THROW(require_clifford_ansatz(c), std::invalid_argument);

    Circuit c2(1);
    c2.rx(0, 0.3);
    EXPECT_THROW(require_clifford_ansatz(c2), std::invalid_argument);

    Circuit ok(2);
    ok.ry_param(0);
    ok.cx(0, 1);
    ok.rz(1, std::numbers::pi);
    EXPECT_NO_THROW(require_clifford_ansatz(ok));
}

TEST(CliffordEvaluator, MatchesIdealEvaluatorAtCliffordPoints)
{
    const std::size_t n = 3;
    const Circuit ansatz = make_efficient_su2(n);
    CliffordEvaluator clifford(ansatz);
    IdealEvaluator ideal(ansatz);

    Rng rng(5);
    const PauliSum op = PauliSum::from_terms(
        n, {{0.7, "XXI"}, {0.3, "IZZ"}, {-0.2, "YIY"}, {0.4, "ZII"}});

    for (int trial = 0; trial < 8; ++trial) {
        std::vector<int> steps(ansatz.num_params());
        for (auto& s : steps) {
            s = static_cast<int>(rng.uniform_int(0, 3));
        }
        clifford.prepare(steps);
        ideal.prepare(steps_to_angles(steps));
        EXPECT_NEAR(clifford.expectation(op), ideal.expectation(op), 1e-10);
    }
}

TEST(CafqaDriver, SolvesXxMicrobenchmark)
{
    // The 1-parameter Fig. 5 problem: 4 Clifford points, minimum -1.
    VqaObjective objective;
    objective.hamiltonian = PauliSum::from_terms(2, {{1.0, "XX"}});
    const CafqaResult result = run_cafqa(
        make_microbenchmark_ansatz(), objective,
        {.warmup = 4, .iterations = 4, .seed = 1});
    EXPECT_NEAR(result.best_energy, -1.0, 1e-12);
    EXPECT_EQ(result.best_steps.size(), 1u);
    EXPECT_EQ(result.best_steps[0], 3);
}

TEST(CafqaDriver, H2BeatsOrMatchesHartreeFock)
{
    using problems::make_molecular_system;
    for (const double bond : {0.74, 2.2}) {
        const auto system = make_molecular_system("H2", bond);
        const VqaObjective objective = problems::make_objective(system);
        const CafqaResult result = run_cafqa(
            system.ansatz, objective,
            {.warmup = 120, .iterations = 120, .seed = 7});

        EXPECT_LE(result.best_energy, system.hf_energy + 1e-9)
            << "bond " << bond;

        const GroundState exact =
            lanczos_ground_state(system.hamiltonian);
        EXPECT_GE(result.best_energy, exact.energy - 1e-9);
        if (bond > 2.0) {
            // At stretched bonds the Clifford state recovers most of the
            // correlation energy HF misses (paper Fig. 8).
            const double hf_error = system.hf_energy - exact.energy;
            const double cafqa_error = result.best_energy - exact.energy;
            EXPECT_LT(cafqa_error, 0.5 * hf_error);
        }
    }
}

TEST(CafqaDriver, CationSectorWithNumberConstraint)
{
    using problems::MolecularSystemOptions;
    MolecularSystemOptions options;
    options.sector_charge = +1;
    options.sector_spin_2sz = +1;
    const auto h2p =
        problems::make_molecular_system("H2", 1.0, options);
    EXPECT_EQ(h2p.n_alpha, 1);
    EXPECT_EQ(h2p.n_beta, 0);

    const VqaObjective objective = problems::make_objective(h2p, 4.0, 4.0);
    const CafqaResult result = run_cafqa(
        h2p.ansatz, objective, {.warmup = 100, .iterations = 100, .seed = 3});

    // The cation must sit above the neutral ground state (H2 does not
    // spontaneously ionize, paper Section 7.1.1).
    const auto neutral = problems::make_molecular_system("H2", 1.0);
    const GroundState neutral_exact =
        lanczos_ground_state(neutral.hamiltonian);
    EXPECT_GT(result.best_energy, neutral_exact.energy + 0.05);

    // And it must not go below the exact cation-sector ground energy.
    const GroundState cation_exact = lanczos_ground_state(h2p.hamiltonian);
    EXPECT_GE(result.best_energy, cation_exact.energy - 1e-9);
}

TEST(CafqaDriver, HfSeedGuaranteesNoWorseThanHartreeFock)
{
    // Even with a tiny budget on a 10-qubit problem (where random
    // exploration of 4^40 configurations is hopeless), prior-injecting
    // the HF point keeps CAFQA at or below the HF baseline.
    const auto system = problems::make_molecular_system("H6", 1.0);
    const VqaObjective objective = problems::make_objective(system);
    CafqaOptions options{.warmup = 10, .iterations = 10, .seed = 1};
    options.seed_steps.push_back(efficient_su2_bitstring_steps(
        system.num_qubits, system.hf_bits));
    const CafqaResult result =
        run_cafqa(system.ansatz, objective, options);
    EXPECT_LE(result.best_energy, system.hf_energy + 1e-9);
}

TEST(CafqaDriver, BayesianSearchMatchesExhaustiveOptimumOnH2)
{
    // Certify the BO result against full enumeration of the 4^8 space.
    const auto system = problems::make_molecular_system("H2", 2.2);
    const VqaObjective objective = problems::make_objective(system);
    const CafqaResult exhaustive =
        exhaustive_clifford_search(system.ansatz, objective);
    const CafqaResult searched = run_cafqa(
        system.ansatz, objective,
        {.warmup = 150, .iterations = 250, .seed = 7});
    EXPECT_NEAR(searched.best_objective, exhaustive.best_objective, 1e-9);
}

TEST(HartreeFockBaseline, BasisExpectationMatchesStatevector)
{
    Rng rng(11);
    const std::size_t n = 5;
    PauliSum op(n);
    for (int t = 0; t < 20; ++t) {
        PauliString p(n);
        for (std::size_t q = 0; q < n; ++q) {
            p.set_letter(q, static_cast<PauliLetter>(rng.uniform_int(0, 3)));
        }
        op.add_term(rng.normal(), p);
    }
    op.simplify();

    std::vector<int> bits(n);
    std::uint64_t index = 0;
    for (std::size_t q = 0; q < n; ++q) {
        bits[q] = static_cast<int>(rng.uniform_int(0, 1));
        if (bits[q]) {
            index |= std::uint64_t{1} << q;
        }
    }
    const Statevector psi = Statevector::basis_state(n, index);
    EXPECT_NEAR(basis_state_expectation(op, bits), psi.expectation(op),
                1e-12);
}

TEST(HartreeFockBaseline, HfBitsAreOptimalBasisStateNearEquilibrium)
{
    const auto h2 = problems::make_molecular_system("H2", 0.74);
    const BestBitstring best = best_constrained_bitstring(
        h2.hamiltonian,
        {{h2.number_op, 2.0}, {h2.sz_op, 0.0}},
        h2.num_qubits);
    EXPECT_NEAR(best.energy, h2.hf_energy, 1e-9);
    EXPECT_EQ(best.bits, h2.hf_bits);
}

TEST(CliffordTEvaluator, BranchSumMatchesDirectSimulation)
{
    // Random Clifford+T circuits: the exact branch decomposition must
    // reproduce the direct statevector simulation.
    Rng rng(21);
    for (int trial = 0; trial < 6; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 2);
        Circuit c(n);
        int t_count = 0;
        for (int g = 0; g < 18; ++g) {
            const auto q = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
            switch (rng.uniform_int(0, 5)) {
              case 0: c.h(q); break;
              case 1: c.s(q); break;
              case 2: c.ry_param(q); break;
              case 3: c.cx(q, (q + 1) % n); break;
              case 4:
                if (t_count < 4) {
                    c.t(q);
                    ++t_count;
                } else {
                    c.z(q);
                }
                break;
              default: c.rz_param(q); break;
            }
        }
        std::vector<int> steps(c.num_params());
        for (auto& s : steps) {
            s = static_cast<int>(rng.uniform_int(0, 3));
        }

        CliffordTEvaluator branches(c);
        EXPECT_EQ(branches.num_branches(),
                  std::size_t{1} << branches.num_t_gates());
        branches.prepare(steps);

        Statevector direct(n);
        direct.apply_circuit(c, steps_to_angles(steps));

        Rng prng(trial);
        for (int probe = 0; probe < 25; ++probe) {
            PauliString p(n);
            for (std::size_t q = 0; q < n; ++q) {
                p.set_letter(q,
                             static_cast<PauliLetter>(prng.uniform_int(0, 3)));
            }
            PauliSum op(n);
            op.add_term(1.0, p);
            EXPECT_NEAR(branches.expectation(op),
                        direct.expectation(op), 1e-10)
                << p.to_label();
        }
    }
}

TEST(CafqaKt, TGatesDoNotHurtAndCanHelp)
{
    // Stretched H2: Clifford-only CAFQA has a known residual error that
    // a single T gate can reduce (paper Fig. 16a).
    const auto system = problems::make_molecular_system("H2", 1.8);
    const VqaObjective objective = problems::make_objective(system);
    const CafqaOptions options{.warmup = 80, .iterations = 80, .seed = 5};

    const CafqaKtResult kt = run_cafqa_kt(system.ansatz, objective, 1,
                                          options);
    EXPECT_LE(kt.boost.best_energy, kt.base.best_energy + 1e-9);
    EXPECT_LE(kt.boost.t_positions.size(), 1u);

    const GroundState exact = lanczos_ground_state(system.hamiltonian);
    EXPECT_GE(kt.boost.best_energy, exact.energy - 1e-9);
}

TEST(VqaTuner, IdealTuningReachesExactFromCafqaInit)
{
    const auto system = problems::make_molecular_system("H2", 1.2);
    VqaObjective objective;
    objective.hamiltonian = system.hamiltonian;

    const CafqaResult cafqa = run_cafqa(
        system.ansatz, objective, {.warmup = 80, .iterations = 80, .seed = 2});
    const GroundState exact = lanczos_ground_state(system.hamiltonian);

    VqaTunerOptions tuner;
    tuner.iterations = 400;
    tuner.seed = 9;
    const VqaTuneResult tuned = tune_vqa(
        system.ansatz, objective, steps_to_angles(cafqa.best_steps), tuner);

    EXPECT_LE(tuned.final_value, cafqa.best_energy + 1e-9);
    EXPECT_NEAR(tuned.final_value, exact.energy, 5e-3);
}

TEST(VqaTuner, ConvergenceMetric)
{
    // trace[0] is the start point: converging there costs 0 steps.
    const std::vector<double> trace = {3.0, 2.0, 1.5, 1.01, 1.0, 1.0};
    EXPECT_EQ(iterations_to_converge(trace, 0.05), 3u);
    EXPECT_EQ(iterations_to_converge(trace, 0.6), 2u);
    EXPECT_EQ(iterations_to_converge(trace, 10.0), 0u);
    EXPECT_EQ(iterations_to_converge({}, 0.1), 0u);
}

TEST(CliffordAnsatz, BitstringStepsPrepareBasisState)
{
    const std::size_t n = 5;
    const Circuit ansatz = make_efficient_su2(n);
    Rng rng(31);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<int> bits(n);
        for (auto& b : bits) {
            b = static_cast<int>(rng.uniform_int(0, 1));
        }
        const std::vector<int> steps =
            efficient_su2_bitstring_steps(n, bits);
        ASSERT_EQ(steps.size(), ansatz.num_params());

        CliffordEvaluator evaluator(ansatz);
        evaluator.prepare(steps);
        // Every single-qubit Z must read back (-1)^bit.
        for (std::size_t q = 0; q < n; ++q) {
            PauliString z(n);
            z.set_letter(q, PauliLetter::Z);
            EXPECT_EQ(evaluator.expectation(z), bits[q] ? -1 : 1)
                << "qubit " << q;
        }
    }
}

TEST(MaxCut, RingOptimumAndHamiltonianConsistency)
{
    const auto ring = problems::make_ring_maxcut(6);
    EXPECT_EQ(ring.edges.size(), 6u);
    EXPECT_NEAR(ring.optimal_cut(), 6.0, 1e-12);
    // Ground energy of the Ising Hamiltonian = -maxcut.
    const GroundState gs = lanczos_ground_state(ring.hamiltonian);
    EXPECT_NEAR(gs.energy, -6.0, 1e-8);
}

TEST(MaxCut, CafqaSolvesMaxCutExactly)
{
    // MaxCut optima are computational basis states, which are inside the
    // Clifford space — CAFQA should find the exact optimum.
    const auto ring = problems::make_ring_maxcut(6);
    VqaObjective objective;
    objective.hamiltonian = ring.hamiltonian;
    const Circuit ansatz = make_efficient_su2(6);
    const CafqaResult result = run_cafqa(
        ansatz, objective, {.warmup = 200, .iterations = 400, .seed = 13});
    EXPECT_NEAR(result.best_energy, -ring.optimal_cut(), 1e-9);
}

TEST(MaxCut, RandomInstanceIsReproducible)
{
    const auto a = problems::make_random_maxcut(8, 0.4, 99, "m1");
    const auto b = problems::make_random_maxcut(8, 0.4, 99, "m1");
    EXPECT_EQ(a.edges, b.edges);
    const auto c = problems::make_random_maxcut(8, 0.4, 100, "m2");
    EXPECT_NE(a.edges, c.edges);
}

TEST(MoleculeFactory, Table1Consistency)
{
    for (const auto& name : problems::supported_molecules()) {
        const auto info = problems::molecule_info(name);
        EXPECT_EQ(info.num_qubits, 2 * info.used_orbitals - 2) << name;
        EXPECT_GE(info.total_orbitals,
                  info.used_orbitals + info.frozen_orbitals)
            << name;
    }
}

TEST(MoleculeFactory, H2SystemShape)
{
    const auto h2 = problems::make_molecular_system("H2", 0.74);
    EXPECT_EQ(h2.num_qubits, 2u);
    EXPECT_TRUE(h2.scf_converged);
    // Full active space: HF determinant expectation == SCF energy.
    EXPECT_NEAR(h2.hf_energy, h2.scf_energy, 1e-8);
    EXPECT_EQ(h2.ansatz.num_params(), 2u * 2u * 2u);
}

TEST(MoleculeFactory, LiHFrozenCoreKeepsHfEnergy)
{
    const auto lih = problems::make_molecular_system("LiH", 1.6);
    EXPECT_EQ(lih.num_qubits, 4u);
    EXPECT_TRUE(lih.scf_converged);
    // The occupied MOs lie inside frozen+active, so the determinant
    // energy is preserved by the truncation.
    EXPECT_NEAR(lih.hf_energy, lih.scf_energy, 1e-7);
}

TEST(MoleculeFactory, SectorFilterSelectsHfState)
{
    const auto lih = problems::make_molecular_system("LiH", 1.6);
    const auto filter = problems::sector_filter(lih);
    std::uint64_t hf_index = 0;
    for (std::size_t q = 0; q < lih.hf_bits.size(); ++q) {
        if (lih.hf_bits[q]) {
            hf_index |= std::uint64_t{1} << q;
        }
    }
    EXPECT_TRUE(filter(hf_index));

    // At least one basis state of the same parity carries a different
    // electron count and must be rejected.
    std::size_t rejected = 0;
    for (std::uint64_t b = 0; b < (std::uint64_t{1} << lih.num_qubits);
         ++b) {
        if (!filter(b)) {
            ++rejected;
        }
    }
    EXPECT_GT(rejected, 0u);
}

TEST(MoleculeFactory, SectorRestrictedLanczosIsAboveGlobal)
{
    const auto lih = problems::make_molecular_system("LiH", 1.6);
    const GroundState global = lanczos_ground_state(lih.hamiltonian);
    LanczosOptions options;
    options.basis_filter = problems::sector_filter(lih);
    const GroundState in_sector =
        lanczos_ground_state(lih.hamiltonian, options);
    EXPECT_GE(in_sector.energy, global.energy - 1e-9);
    // The LiH ground state is the neutral singlet, so both coincide.
    EXPECT_NEAR(in_sector.energy, global.energy, 1e-7);
    // And the sector energy cannot beat HF by more than the full
    // correlation energy (sanity bound).
    EXPECT_LT(in_sector.energy, lih.hf_energy + 1e-9);
}

TEST(MoleculeFactory, UnknownMoleculeThrows)
{
    EXPECT_THROW(problems::make_molecular_system("Xe2", 1.0),
                 std::invalid_argument);
}

} // namespace
} // namespace cafqa
