/**
 * Job-server subsystem tests: line framing (partial reads, batched
 * messages, oversized-line rejection), request/event codecs, the
 * client-fair bounded queue, and end-to-end socket flows — submit /
 * result round trips, cancel-mid-run, queue-full rejection and
 * drain-flushes-everything shutdown.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "core/batch_runner.hpp"
#include "server/client.hpp"
#include "server/job_queue.hpp"
#include "server/job_server.hpp"
#include "server/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa::server {
namespace {

// ------------------------------------------------------------- framing

TEST(LineFramer, SplitsPartialReads)
{
    LineFramer framer;
    std::vector<std::string> lines;
    EXPECT_TRUE(framer.feed("{\"op\":\"st", lines));
    EXPECT_TRUE(lines.empty());
    EXPECT_GT(framer.buffered(), 0u);
    EXPECT_TRUE(framer.feed("ats\"}\n", lines));
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "{\"op\":\"stats\"}");
    EXPECT_EQ(framer.buffered(), 0u);
}

TEST(LineFramer, ManyMessagesInOneRead)
{
    LineFramer framer;
    std::vector<std::string> lines;
    EXPECT_TRUE(framer.feed("a\nb\r\nc\nd", lines));
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "a");
    EXPECT_EQ(lines[1], "b"); // '\r' stripped
    EXPECT_EQ(lines[2], "c");
    EXPECT_EQ(framer.buffered(), 1u); // "d" awaits its newline
}

TEST(LineFramer, RejectsOversizedLines)
{
    LineFramer framer(8);
    std::vector<std::string> lines;
    EXPECT_TRUE(framer.feed("12345678\n", lines)); // exactly at bound
    ASSERT_EQ(lines.size(), 1u);
    // One byte over, split across reads: poisoned even before the
    // newline arrives.
    EXPECT_TRUE(framer.feed("12345", lines));
    EXPECT_FALSE(framer.feed("6789", lines));
    EXPECT_TRUE(framer.overflowed());
    // Poisoned framers reject everything afterwards.
    EXPECT_FALSE(framer.feed("x\n", lines));
    EXPECT_EQ(lines.size(), 1u);
}

// -------------------------------------------------------------- codecs

TEST(Protocol, ParsesEnvelopeSubmit)
{
    const Request request = parse_request(
        "{\"op\":\"submit\",\"id\":\"j1\","
        "\"spec\":\"problem=maxcut:ring-6 warmup=8\"}");
    EXPECT_EQ(request.op, Op::Submit);
    EXPECT_EQ(request.id, "j1");
    EXPECT_EQ(request.spec.problem, "maxcut:ring-6");
    EXPECT_EQ(request.spec.warmup, 8u);
}

TEST(Protocol, ParsesImplicitSubmit)
{
    // No "op": the whole line is a flat RunSpec.
    const Request request =
        parse_request("{\"problem\":\"tfim:chain-4?h=1\",\"seed\":3}");
    EXPECT_EQ(request.op, Op::Submit);
    EXPECT_TRUE(request.id.empty());
    EXPECT_EQ(request.spec.problem, "tfim:chain-4?h=1");
    EXPECT_EQ(request.spec.seed, 3u);
}

TEST(Protocol, ParsesControlOps)
{
    EXPECT_EQ(parse_request("{\"op\":\"stats\"}").op, Op::Stats);
    const Request cancel =
        parse_request("{\"op\":\"cancel\",\"id\":\"j9\"}");
    EXPECT_EQ(cancel.op, Op::Cancel);
    EXPECT_EQ(cancel.id, "j9");
    EXPECT_TRUE(parse_request("{\"op\":\"shutdown\"}").drain);
    EXPECT_FALSE(
        parse_request("{\"op\":\"shutdown\",\"mode\":\"now\"}").drain);
}

TEST(Protocol, RejectsBadRequests)
{
    EXPECT_THROW(parse_request("not json"), std::invalid_argument);
    EXPECT_THROW(parse_request("{\"op\":\"nope\"}"),
                 std::invalid_argument);
    EXPECT_THROW(parse_request("{\"op\":\"submit\"}"), // no spec
                 std::invalid_argument);
    EXPECT_THROW(parse_request("{\"op\":\"cancel\"}"), // no id
                 std::invalid_argument);
    EXPECT_THROW(
        parse_request("{\"op\":\"shutdown\",\"mode\":\"later\"}"),
        std::invalid_argument);
    // Duplicate fields are a protocol violation, not last-wins.
    EXPECT_THROW(
        parse_request("{\"op\":\"cancel\",\"id\":\"a\",\"id\":\"b\"}"),
        std::invalid_argument);
}

TEST(Protocol, EventRoundTrip)
{
    const Event accepted = parse_event(event_accepted("j1", 7));
    EXPECT_EQ(accepted.event, "accepted");
    EXPECT_EQ(accepted.id, "j1");
    EXPECT_EQ(accepted.queued, 7u);

    RunRecord record;
    record.spec = RunSpec::parse("problem=maxcut:ring-6");
    record.ok = true;
    record.best_objective = -1.5;
    const Event result = parse_event(event_result("j1", record));
    EXPECT_EQ(result.event, "result");
    // The embedded record is passed through byte for byte.
    EXPECT_EQ(result.record_json, record.to_json());

    ServerCounters counters;
    counters.submitted = 4;
    counters.completed = 3;
    counters.queued = 2;
    counters.workers = 8;
    counters.busy = 5;
    const Event stats = parse_event(event_stats(counters, CacheStats{}));
    EXPECT_EQ(stats.event, "stats");
    EXPECT_EQ(stats.counters.submitted, 4u);
    EXPECT_EQ(stats.counters.completed, 3u);
    // The occupancy side of the reply: without queued/workers/busy a
    // drained server and a wedged one look identical from outside.
    EXPECT_EQ(stats.counters.queued, 2u);
    EXPECT_EQ(stats.counters.workers, 8u);
    EXPECT_EQ(stats.counters.busy, 5u);
    EXPECT_FALSE(stats.cache_json.empty());
}

TEST(Protocol, MetricsRoundTrip)
{
    const Event metrics = parse_event(event_metrics(
        1722000000.5, "# TYPE cafqa_x counter\ncafqa_x 1\n",
        "{\"cafqa_x\":1}"));
    EXPECT_EQ(metrics.event, "metrics");
    EXPECT_EQ(metrics.prometheus,
              "# TYPE cafqa_x counter\ncafqa_x 1\n");
    EXPECT_EQ(metrics.snapshot_json, "{\"cafqa_x\":1}");
}

// --------------------------------------------------------------- queue

Job
make_job(const std::string& client, const std::string& id)
{
    Job job;
    job.client = client;
    job.id = id;
    return job;
}

TEST(JobQueue, RoundRobinAcrossClients)
{
    JobQueue queue(16);
    // A floods first; B's two jobs must interleave, not wait out A.
    for (const char* id : {"a1", "a2", "a3"}) {
        EXPECT_EQ(queue.push(make_job("A", id)), Admit::Accepted);
    }
    for (const char* id : {"b1", "b2"}) {
        EXPECT_EQ(queue.push(make_job("B", id)), Admit::Accepted);
    }
    std::vector<std::string> order;
    for (std::size_t i = 0; i < 5; ++i) {
        order.push_back(queue.pop()->id);
    }
    EXPECT_EQ(order,
              (std::vector<std::string>{"a1", "b1", "a2", "b2", "a3"}));
}

TEST(JobQueue, BoundedAdmission)
{
    JobQueue queue(2);
    EXPECT_EQ(queue.push(make_job("A", "a1")), Admit::Accepted);
    EXPECT_EQ(queue.push(make_job("B", "b1")), Admit::Accepted);
    EXPECT_EQ(queue.push(make_job("C", "c1")), Admit::QueueFull);
    EXPECT_EQ(queue.size(), 2u);
    queue.pop();
    EXPECT_EQ(queue.push(make_job("C", "c1")), Admit::Accepted);
}

TEST(JobQueue, CloseDrainsThenSignalsExhaustion)
{
    JobQueue queue(4);
    queue.push(make_job("A", "a1"));
    queue.close();
    EXPECT_EQ(queue.push(make_job("A", "a2")), Admit::Draining);
    EXPECT_EQ(queue.pop()->id, "a1"); // queued work still drains
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(JobQueue, DrainNowFlushesEverythingFairly)
{
    JobQueue queue(8);
    queue.push(make_job("A", "a1"));
    queue.push(make_job("A", "a2"));
    queue.push(make_job("B", "b1"));
    const std::vector<Job> flushed = queue.drain_now();
    ASSERT_EQ(flushed.size(), 3u);
    EXPECT_EQ(flushed[0].id, "a1");
    EXPECT_EQ(flushed[1].id, "b1");
    EXPECT_EQ(flushed[2].id, "a2");
    EXPECT_EQ(queue.size(), 0u);
}

// --------------------------------------------------- end-to-end socket

/** Read events until `predicate` consumes one; collects everything by
 *  kind along the way. */
Event
read_until(BlockingClient& client, const std::string& kind,
           const std::string& id = "")
{
    for (;;) {
        const auto line = client.read_line();
        if (!line) {
            ADD_FAILURE() << "connection closed waiting for " << kind;
            return Event{};
        }
        const Event event = parse_event(*line);
        if (event.event == kind && (id.empty() || event.id == id)) {
            return event;
        }
    }
}

TEST(JobServerEndToEnd, SubmitResultRoundTrip)
{
    ServerOptions options;
    options.workers = 1;
    JobServer server(options);
    server.start();

    auto client = BlockingClient::connect_tcp("127.0.0.1", server.port());
    const RunSpec spec =
        RunSpec::parse("problem=maxcut:ring-6 warmup=4 iterations=4");
    client.send_line(submit_line("j1", spec));

    const Event accepted = read_until(client, "accepted", "j1");
    EXPECT_EQ(accepted.id, "j1");
    read_until(client, "started", "j1");
    const Event result = read_until(client, "result", "j1");
    EXPECT_NE(result.record_json.find("\"ok\":true"), std::string::npos);
    EXPECT_EQ(result.record_json.find("\"cancelled\""),
              std::string::npos);

    // Malformed request: request-level error event, connection lives.
    client.send_line("{\"op\":\"warp\"}");
    const Event error = read_until(client, "error");
    EXPECT_NE(error.message.find("unknown op"), std::string::npos);

    // Stats verb reports the counters, the occupancy view and the
    // shared cache. The result event is written before the worker
    // marks itself idle again, so poll briefly for busy to settle.
    Event stats;
    for (int attempt = 0;; ++attempt) {
        client.send_line(stats_line());
        stats = read_until(client, "stats");
        if (stats.counters.busy == 0 || attempt >= 50) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(stats.counters.submitted, 1u);
    EXPECT_EQ(stats.counters.completed, 1u);
    EXPECT_EQ(stats.counters.queued, 0u);
    EXPECT_EQ(stats.counters.workers, 1u);
    EXPECT_EQ(stats.counters.busy, 0u);
    EXPECT_FALSE(stats.cache_json.empty());

    // Metrics verb: a Prometheus body plus a JSON snapshot covering
    // the server, queue and cache series. The process registry
    // accumulates across tests in this binary, so assertions are
    // presence + lower bounds, never exact totals.
    client.send_line(metrics_line());
    const Event metrics = read_until(client, "metrics");
    EXPECT_FALSE(metrics.prometheus.empty());
    EXPECT_FALSE(metrics.snapshot_json.empty());
    const auto sample = [&metrics](const std::string& series) {
        return cafqa::telemetry::find_prometheus_sample(
            metrics.prometheus, series);
    };
    const auto completed =
        sample("cafqa_server_jobs_completed_total");
    ASSERT_TRUE(completed.has_value());
    EXPECT_GE(*completed, 1.0);
    const auto submits =
        sample("cafqa_server_requests_total{verb=\"submit\"}");
    ASSERT_TRUE(submits.has_value());
    EXPECT_GE(*submits, 1.0);
    EXPECT_EQ(sample("cafqa_server_queue_depth"), 0.0);
    EXPECT_EQ(sample("cafqa_server_busy_workers"), 0.0);
    ASSERT_TRUE(sample("cafqa_cache_hits_total").has_value());
    ASSERT_TRUE(
        sample("cafqa_server_job_latency_ms_count").has_value());
    EXPECT_NE(metrics.snapshot_json.find(
                  "\"cafqa_server_job_latency_ms\""),
              std::string::npos);

    server.shutdown(true);
    server.wait();

    // After wait() the server has unhooked its callback gauges: a
    // scrape through the registry must not reach freed server state.
    const std::string post =
        cafqa::telemetry::MetricsRegistry::instance().prometheus();
    EXPECT_EQ(cafqa::telemetry::find_prometheus_sample(
                  post, "cafqa_server_queue_depth"),
              std::nullopt);
}

TEST(JobServerEndToEnd, RecordMatchesSoloRun)
{
    ServerOptions options;
    options.workers = 1;
    JobServer server(options);
    server.start();

    auto client = BlockingClient::connect_tcp("127.0.0.1", server.port());
    const RunSpec spec = RunSpec::parse(
        "problem=tfim:chain-4?h=1 warmup=4 iterations=4 tune=4");
    client.send_line(submit_line("solo", spec));
    const Event result = read_until(client, "result", "solo");
    server.shutdown(true);
    server.wait();

    // Byte-identical to the solo run except wall_ms (not
    // deterministic): compare around that one field.
    const std::string solo = execute_run_spec(spec).to_json();
    const auto strip = [](const std::string& json) {
        const std::size_t at = json.find("\"wall_ms\":");
        const std::size_t end = json.find_first_of(",}", at + 10);
        return json.substr(0, at) + json.substr(end + 1);
    };
    EXPECT_EQ(strip(result.record_json), strip(solo));
}

TEST(JobServerEndToEnd, CancelMidRunKeepsBestSoFar)
{
    ServerOptions options;
    options.workers = 1;
    JobServer server(options);
    server.start();

    auto client = BlockingClient::connect_tcp("127.0.0.1", server.port());
    // A budget far beyond what could finish quickly: without the
    // cancel this would run for a very long time.
    client.send_line(submit_line(
        "big", RunSpec::parse("problem=maxcut:ring-8 search=anneal "
                              "warmup=50000 iterations=2000000")));
    read_until(client, "started", "big");
    client.send_line(cancel_line("big"));
    read_until(client, "cancelled", "big");
    const Event result = read_until(client, "result", "big");
    // Cooperative stop: the record still carries the best point found.
    EXPECT_NE(result.record_json.find("\"cancelled\":true"),
              std::string::npos);
    EXPECT_NE(result.record_json.find("\"stop_reason\":\"cancelled\""),
              std::string::npos);
    EXPECT_NE(result.record_json.find("\"ok\":true"), std::string::npos);

    // Cancelling an unknown id is an error event, not a crash.
    client.send_line(cancel_line("nope"));
    const Event error = read_until(client, "error");
    EXPECT_NE(error.message.find("unknown"), std::string::npos);

    server.shutdown(true);
    server.wait();
}

TEST(JobServerEndToEnd, CancelMidRunWithTBoostRequestedStaysClean)
{
    ServerOptions options;
    options.workers = 1;
    JobServer server(options);
    server.start();

    auto client = BlockingClient::connect_tcp("127.0.0.1", server.port());
    // max-t > 0 and the cancel lands in the (huge-budget) Clifford
    // stage, so the t-boost stage never runs — the record must still be
    // a best-so-far cancelled one, not a "run_t_boost() has not been
    // called" error record.
    client.send_line(submit_line(
        "boosted", RunSpec::parse("problem=maxcut:ring-8 search=anneal "
                                  "warmup=50000 iterations=2000000 "
                                  "max-t=2 tune=8")));
    read_until(client, "started", "boosted");
    client.send_line(cancel_line("boosted"));
    read_until(client, "cancelled", "boosted");
    const Event result = read_until(client, "result", "boosted");
    EXPECT_NE(result.record_json.find("\"ok\":true"), std::string::npos)
        << result.record_json;
    EXPECT_NE(result.record_json.find("\"cancelled\":true"),
              std::string::npos);
    EXPECT_EQ(result.record_json.find("has not been called"),
              std::string::npos)
        << result.record_json;

    server.shutdown(true);
    server.wait();
}

TEST(JobServerEndToEnd, QueueFullRejectsWithReason)
{
    ServerOptions options;
    options.workers = 1;
    options.queue_capacity = 1;
    JobServer server(options);
    server.start();

    auto client = BlockingClient::connect_tcp("127.0.0.1", server.port());
    // One long job occupies the worker; the queue (capacity 1) takes
    // exactly one more; the third submit must bounce.
    client.send_line(submit_line(
        "running", RunSpec::parse("problem=maxcut:ring-8 search=anneal "
                                  "warmup=50000 iterations=2000000")));
    read_until(client, "started", "running");
    client.send_line(submit_line(
        "queued", RunSpec::parse("problem=maxcut:ring-6 warmup=4 "
                                 "iterations=4")));
    read_until(client, "accepted", "queued");
    client.send_line(submit_line(
        "bounced", RunSpec::parse("problem=maxcut:ring-6 warmup=4 "
                                  "iterations=4")));
    const Event rejected = read_until(client, "rejected", "bounced");
    EXPECT_EQ(rejected.reason, "queue full");

    // Duplicate ids of still-active jobs bounce too.
    client.send_line(submit_line(
        "queued", RunSpec::parse("problem=maxcut:ring-6")));
    const Event duplicate = read_until(client, "rejected", "queued");
    EXPECT_NE(duplicate.reason.find("duplicate"), std::string::npos);

    server.shutdown(false); // cancel the long job; don't wait it out
    server.wait();
}

TEST(JobServerEndToEnd, DrainFlushesAllRecordsThenSaysBye)
{
    ServerOptions options;
    options.workers = 1; // serialize so jobs really queue up
    JobServer server(options);
    server.start();

    auto client = BlockingClient::connect_tcp("127.0.0.1", server.port());
    std::vector<std::string> ids;
    for (std::size_t i = 1; i <= 4; ++i) {
        const std::string id = "d" + std::to_string(i);
        ids.push_back(id);
        client.send_line(submit_line(
            id, RunSpec::parse("problem=maxcut:ring-6 warmup=4 "
                               "iterations=4 seed=" +
                               std::to_string(i))));
    }
    client.send_line(shutdown_line(true));
    // The bye is emitted by the teardown in wait(), so run it
    // concurrently with the read loop below.
    std::thread waiter([&server] { server.wait(); });

    // Drain contract: every accepted job streams its record before the
    // bye, and nothing is marked cancelled.
    std::map<std::string, bool> resolved;
    for (;;) {
        const auto line = client.read_line();
        ASSERT_TRUE(line.has_value());
        const Event event = parse_event(*line);
        if (event.event == "result") {
            EXPECT_NE(event.record_json.find("\"ok\":true"),
                      std::string::npos);
            EXPECT_EQ(event.record_json.find("\"cancelled\""),
                      std::string::npos);
            resolved[event.id] = true;
        } else if (event.event == "bye") {
            EXPECT_EQ(event.reason, "drain");
            break;
        }
    }
    for (const std::string& id : ids) {
        EXPECT_TRUE(resolved[id]) << id << " never resolved";
    }
    EXPECT_FALSE(client.read_line().has_value()); // clean EOF after bye
    waiter.join();

    const ServerCounters counters = server.counters();
    EXPECT_EQ(counters.submitted, ids.size());
    EXPECT_EQ(counters.completed, ids.size());
}

TEST(JobServerEndToEnd, ShutdownNowCancelsQueuedJobs)
{
    ServerOptions options;
    options.workers = 1;
    JobServer server(options);
    server.start();

    auto client = BlockingClient::connect_tcp("127.0.0.1", server.port());
    client.send_line(submit_line(
        "long", RunSpec::parse("problem=maxcut:ring-8 search=anneal "
                               "warmup=50000 iterations=2000000")));
    read_until(client, "started", "long");
    client.send_line(submit_line(
        "waiting", RunSpec::parse("problem=maxcut:ring-6")));
    read_until(client, "accepted", "waiting");

    client.send_line(shutdown_line(false));
    // Both records flush (in either order): the in-flight one
    // cooperatively cancelled with its best-so-far, the queued one
    // cancelled before start.
    std::map<std::string, std::string> records;
    while (records.size() < 2) {
        const auto line = client.read_line();
        ASSERT_TRUE(line.has_value());
        const Event event = parse_event(*line);
        if (event.event == "result") {
            records[event.id] = event.record_json;
        }
    }
    EXPECT_NE(records["long"].find("\"cancelled\":true"),
              std::string::npos);
    EXPECT_NE(records["waiting"].find("\"cancelled\":true"),
              std::string::npos);
    EXPECT_NE(records["waiting"].find("cancelled before start"),
              std::string::npos);
    server.wait();
}

TEST(JobServerEndToEnd, UnixDomainSocketServes)
{
    ServerOptions options;
    options.workers = 1;
    options.unix_path = "/tmp/cafqa_test_server.sock";
    JobServer server(options);
    server.start();

    auto client = BlockingClient::connect_unix(options.unix_path);
    client.send_line(submit_line(
        "u1", RunSpec::parse("problem=maxcut:ring-6 warmup=4 "
                             "iterations=4")));
    const Event result = read_until(client, "result", "u1");
    EXPECT_NE(result.record_json.find("\"ok\":true"), std::string::npos);
    server.shutdown(true);
    server.wait();
}

TEST(JobServerEndToEnd, StalledClientCannotWedgeDrainShutdown)
{
    ServerOptions options;
    options.workers = 1;
    options.unix_path = "/tmp/cafqa_test_stall.sock";
    options.send_timeout_ms = 200;
    JobServer server(options);
    server.start();

    // A client that floods stats requests and never reads a byte: the
    // responses fill the fixed-size unix-socket buffers and the
    // reader's send stalls. The send timeout must drop the stalled
    // connection instead of blocking in it forever...
    auto client = BlockingClient::connect_unix(options.unix_path);
    try {
        for (int i = 0; i < 4000; ++i) {
            client.send_line(stats_line());
        }
    } catch (const std::exception&) {
        // The server already dropped the stalled connection mid-flood —
        // exactly the intended outcome; proceed to the shutdown check.
    }
    // ...so drain shutdown can still say bye and join every thread.
    // Without the timeout this wait() never returns.
    server.shutdown(true);
    server.wait();
}

TEST(JobServerEndToEnd, UnixPathRefusalAndStaleRecovery)
{
    const std::string path = "/tmp/cafqa_test_guard.sock";
    std::remove(path.c_str());

    // A pre-existing non-socket file is never unlinked.
    {
        std::ofstream(path) << "precious";
        ServerOptions options;
        options.unix_path = path;
        JobServer server(options);
        EXPECT_THROW(server.start(), std::runtime_error);
        std::ifstream check(path);
        std::string content;
        check >> content;
        EXPECT_EQ(content, "precious");
        std::remove(path.c_str());
    }

    // A socket another live server answers on is not hijacked.
    {
        ServerOptions options;
        options.unix_path = path;
        JobServer live(options);
        live.start();
        JobServer second(options);
        EXPECT_THROW(second.start(), std::runtime_error);
        live.shutdown(true);
        live.wait(); // unlinks the path on teardown
    }

    // A stale socket left behind by a crash is cleared and reused.
    {
        const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(stale, 0);
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        std::strncpy(address.sun_path, path.c_str(),
                     sizeof(address.sun_path) - 1);
        ASSERT_EQ(::bind(stale,
                         reinterpret_cast<const sockaddr*>(&address),
                         sizeof(address)),
                  0);
        ::close(stale); // bound but nobody listening: a stale path
        ServerOptions options;
        options.unix_path = path;
        JobServer server(options);
        server.start();
        server.shutdown(true);
        server.wait();
    }
}

} // namespace
} // namespace cafqa::server
