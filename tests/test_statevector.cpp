// Tests for the dense statevector simulator and the Lanczos eigensolver.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "statevector/lanczos.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {
namespace {

TEST(Statevector, InitialState)
{
    Statevector psi(3);
    EXPECT_EQ(psi.dim(), 8u);
    EXPECT_NEAR(std::abs(psi.amplitudes()[0]), 1.0, 1e-15);
    EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-15);
}

TEST(Statevector, BasisState)
{
    const Statevector psi = Statevector::basis_state(3, 0b101);
    EXPECT_NEAR(std::abs(psi.amplitudes()[5]), 1.0, 1e-15);
    // Qubit 0 and qubit 2 are |1>.
    EXPECT_NEAR(psi.expectation(PauliString::from_label("ZII")).real(), -1.0,
                1e-15);
    EXPECT_NEAR(psi.expectation(PauliString::from_label("IZI")).real(), 1.0,
                1e-15);
    EXPECT_NEAR(psi.expectation(PauliString::from_label("IIZ")).real(), -1.0,
                1e-15);
}

TEST(Statevector, HadamardAndMeasurementBasis)
{
    Statevector psi(1);
    Circuit c(1);
    c.h(0);
    psi.apply_circuit(c);
    EXPECT_NEAR(psi.expectation(PauliString::from_label("X")).real(), 1.0,
                1e-14);
    EXPECT_NEAR(psi.expectation(PauliString::from_label("Z")).real(), 0.0,
                1e-14);
}

TEST(Statevector, RotationGatesMatchAnalyticForm)
{
    // RY(theta)|0> = cos(theta/2)|0> + sin(theta/2)|1>.
    const double theta = 0.731;
    Statevector psi(1);
    Circuit c(1);
    c.ry(0, theta);
    psi.apply_circuit(c);
    EXPECT_NEAR(psi.amplitudes()[0].real(), std::cos(theta / 2), 1e-14);
    EXPECT_NEAR(psi.amplitudes()[1].real(), std::sin(theta / 2), 1e-14);

    // <Z> = cos(theta), <X> = sin(theta).
    EXPECT_NEAR(psi.expectation(PauliString::from_label("Z")).real(),
                std::cos(theta), 1e-14);
    EXPECT_NEAR(psi.expectation(PauliString::from_label("X")).real(),
                std::sin(theta), 1e-14);
}

TEST(Statevector, ApplyPauliMatchesExpectation)
{
    Rng rng(3);
    const std::size_t n = 3;
    Statevector psi(n);
    Circuit c(n);
    c.ry(0, 0.4);
    c.cx(0, 1);
    c.rz(1, 1.1);
    c.ry(2, 2.2);
    c.cx(1, 2);
    psi.apply_circuit(c);

    for (int trial = 0; trial < 30; ++trial) {
        PauliString p(n);
        for (std::size_t q = 0; q < n; ++q) {
            p.set_letter(q, static_cast<PauliLetter>(rng.uniform_int(0, 3)));
        }
        Statevector applied = psi;
        applied.apply_pauli(p);
        const Complex via_inner = psi.inner(applied);
        const Complex via_expect = psi.expectation(p);
        EXPECT_NEAR(std::abs(via_inner - via_expect), 0.0, 1e-12)
            << p.to_label();
    }
}

TEST(Statevector, PauliSumExpectationLinearity)
{
    Statevector psi(2);
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    psi.apply_circuit(c); // Bell state
    const PauliSum op = PauliSum::from_terms(
        2, {{0.25, "XX"}, {0.5, "ZZ"}, {-1.0, "YY"}, {3.0, "II"}});
    EXPECT_NEAR(psi.expectation(op), 0.25 + 0.5 + 1.0 + 3.0, 1e-13);
}

TEST(Statevector, SwapAndCzGates)
{
    Statevector psi = Statevector::basis_state(2, 0b01);
    Circuit c(2);
    c.swap(0, 1);
    psi.apply_circuit(c);
    EXPECT_NEAR(std::abs(psi.amplitudes()[0b10]), 1.0, 1e-15);

    // CZ phase: |11> picks up -1.
    Statevector phi = Statevector::basis_state(2, 0b11);
    Circuit c2(2);
    c2.cz(0, 1);
    phi.apply_circuit(c2);
    EXPECT_NEAR(phi.amplitudes()[3].real(), -1.0, 1e-15);
}

TEST(Lanczos, TwoQubitXXGroundState)
{
    // H = XX has eigenvalues {+1, +1, -1, -1}.
    const PauliSum h = PauliSum::from_terms(2, {{1.0, "XX"}});
    const GroundState gs = lanczos_ground_state(h);
    EXPECT_NEAR(gs.energy, -1.0, 1e-9);
}

TEST(Lanczos, TransverseFieldIsingChain)
{
    // H = -sum Z_i Z_{i+1} - g sum X_i at g=1 on 6 sites (open chain).
    const std::size_t n = 6;
    PauliSum h(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        PauliString zz(n);
        zz.set_letter(i, PauliLetter::Z);
        zz.set_letter(i + 1, PauliLetter::Z);
        h.add_term(-1.0, zz);
    }
    for (std::size_t i = 0; i < n; ++i) {
        PauliString x(n);
        x.set_letter(i, PauliLetter::X);
        h.add_term(-1.0, x);
    }
    h.simplify();

    const GroundState gs = lanczos_ground_state(h);
    const std::vector<double> dense = dense_spectrum(h);
    EXPECT_NEAR(gs.energy, dense.front(), 1e-8);
}

TEST(Lanczos, RandomHamiltoniansMatchDenseSpectrum)
{
    Rng rng(11);
    for (int trial = 0; trial < 5; ++trial) {
        const std::size_t n = 2 +
            static_cast<std::size_t>(rng.uniform_int(0, 2));
        PauliSum h(n);
        for (int t = 0; t < 12; ++t) {
            PauliString p(n);
            for (std::size_t q = 0; q < n; ++q) {
                p.set_letter(q,
                             static_cast<PauliLetter>(rng.uniform_int(0, 3)));
            }
            h.add_term(rng.normal(), p);
        }
        h.simplify();
        if (h.num_terms() == 0) {
            continue;
        }
        const GroundState gs =
            lanczos_ground_state(h, {.max_iterations = 200,
                                     .tolerance = 1e-12,
                                     .seed = 5,
                                     .want_vector = false});
        const std::vector<double> dense = dense_spectrum(h);
        EXPECT_NEAR(gs.energy, dense.front(), 1e-7) << "trial " << trial;
    }
}

TEST(Lanczos, EigenvectorReconstruction)
{
    const PauliSum h = PauliSum::from_terms(
        2, {{1.0, "XX"}, {0.5, "ZI"}, {0.5, "IZ"}, {0.2, "ZZ"}});
    const GroundState gs = lanczos_ground_state(
        h, {.max_iterations = 100, .tolerance = 1e-12, .seed = 5,
            .want_vector = true});
    ASSERT_TRUE(gs.state.has_value());
    // Rayleigh quotient of the reconstructed state equals the energy.
    EXPECT_NEAR(gs.state->expectation(h), gs.energy, 1e-8);
    EXPECT_NEAR(gs.state->norm_squared(), 1.0, 1e-10);
}

TEST(DenseSpectrum, PauliEigenvaluesAreSigns)
{
    const PauliSum h = PauliSum::from_terms(1, {{1.0, "Y"}});
    const std::vector<double> spectrum = dense_spectrum(h);
    ASSERT_EQ(spectrum.size(), 2u);
    EXPECT_NEAR(spectrum[0], -1.0, 1e-10);
    EXPECT_NEAR(spectrum[1], 1.0, 1e-10);
}

} // namespace
} // namespace cafqa
