// Tests for the quantum chemistry stack: Boys function, Gaussian
// integrals, STO-3G basis construction, the STO-nG fitter, and restricted
// Hartree-Fock. Literature anchors: the H2/STO-3G values tabulated in
// Szabo & Ostlund, "Modern Quantum Chemistry" (R = 1.4 Bohr, zeta = 1.24).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "chem/basis.hpp"
#include "chem/boys.hpp"
#include "chem/gaussian.hpp"
#include "chem/molecule.hpp"
#include "chem/scf.hpp"
#include "chem/sto_data.hpp"
#include "chem/sto_fit.hpp"

namespace cafqa::chem {
namespace {

TEST(Boys, ZeroArgument)
{
    const auto f = boys_function(4, 0.0);
    for (int m = 0; m <= 4; ++m) {
        EXPECT_NEAR(f[static_cast<std::size_t>(m)], 1.0 / (2 * m + 1),
                    1e-14);
    }
}

TEST(Boys, ClosedFormF0)
{
    // F_0(T) = (1/2) sqrt(pi/T) erf(sqrt(T)).
    for (const double t : {0.1, 0.5, 1.0, 5.0, 20.0, 50.0}) {
        const auto f = boys_function(0, t);
        const double expected =
            0.5 * std::sqrt(std::numbers::pi / t) * std::erf(std::sqrt(t));
        EXPECT_NEAR(f[0], expected, 1e-12) << "T=" << t;
    }
}

TEST(Boys, RecursionConsistency)
{
    // d/dT F_m = -F_{m+1}; check by central differences.
    const double t = 3.7;
    const double h = 1e-5;
    const auto fp = boys_function(3, t + h);
    const auto fm = boys_function(3, t - h);
    const auto f = boys_function(4, t);
    for (int m = 0; m <= 3; ++m) {
        const double deriv =
            (fp[static_cast<std::size_t>(m)] -
             fm[static_cast<std::size_t>(m)]) /
            (2 * h);
        EXPECT_NEAR(deriv, -f[static_cast<std::size_t>(m) + 1], 1e-8);
    }
}

TEST(Gaussian, SameCenterMoments)
{
    const double alpha = 0.7;
    const PrimitiveGaussian g{alpha, {0, 0, 0}, {0.0, 0.0, 0.0}};
    const double s = overlap(g, g);
    EXPECT_NEAR(s, std::pow(std::numbers::pi / (2 * alpha), 1.5), 1e-12);
    // <T>/<S> = 3 alpha / 2 for an s Gaussian.
    EXPECT_NEAR(kinetic(g, g) / s, 1.5 * alpha, 1e-12);
    // <1/r>/<S> = 2 sqrt(p/pi) with p = 2 alpha.
    EXPECT_NEAR(nuclear(g, g, {0.0, 0.0, 0.0}) / s,
                2.0 * std::sqrt(2.0 * alpha / std::numbers::pi), 1e-12);
}

TEST(Gaussian, POrbitalOverlapOrthogonality)
{
    const PrimitiveGaussian px{0.5, {1, 0, 0}, {0.0, 0.0, 0.0}};
    const PrimitiveGaussian py{0.5, {0, 1, 0}, {0.0, 0.0, 0.0}};
    EXPECT_NEAR(overlap(px, py), 0.0, 1e-14);
    EXPECT_GT(overlap(px, px), 0.0);
}

TEST(Gaussian, TranslationInvariance)
{
    const PrimitiveGaussian a{0.8, {1, 0, 1}, {0.1, -0.2, 0.3}};
    const PrimitiveGaussian b{0.4, {0, 2, 0}, {0.5, 0.6, -0.7}};
    PrimitiveGaussian a2 = a;
    PrimitiveGaussian b2 = b;
    for (int d = 0; d < 3; ++d) {
        a2.center[d] += 1.234;
        b2.center[d] += 1.234;
    }
    EXPECT_NEAR(overlap(a, b), overlap(a2, b2), 1e-12);
    EXPECT_NEAR(kinetic(a, b), kinetic(a2, b2), 1e-12);
}

TEST(Gaussian, EriPermutationSymmetry)
{
    const PrimitiveGaussian a{1.1, {0, 0, 0}, {0.0, 0.0, 0.0}};
    const PrimitiveGaussian b{0.6, {1, 0, 0}, {0.0, 0.0, 1.2}};
    const PrimitiveGaussian c{0.9, {0, 1, 0}, {0.3, 0.0, 0.0}};
    const PrimitiveGaussian d{0.4, {0, 0, 1}, {0.0, 0.7, 0.0}};
    const double abcd = electron_repulsion(a, b, c, d);
    EXPECT_NEAR(abcd, electron_repulsion(b, a, c, d), 1e-12);
    EXPECT_NEAR(abcd, electron_repulsion(a, b, d, c), 1e-12);
    EXPECT_NEAR(abcd, electron_repulsion(c, d, a, b), 1e-12);
}

TEST(StoFit, ReproducesUniversal1sExpansion)
{
    // Hehre-Stewart-Pople universal STO-3G 1s fit (zeta = 1):
    // exponents {2.22766, 0.405771, 0.109818}, overlap ~ 0.9985.
    const StoNgFit fit = fit_sto_ng(1, 0, 3);
    EXPECT_GT(fit.overlap, 0.9984);
    std::vector<double> exps = fit.exponents;
    std::sort(exps.begin(), exps.end());
    EXPECT_NEAR(exps[0], 0.109818, 0.02);
    EXPECT_NEAR(exps[1], 0.405771, 0.05);
    EXPECT_NEAR(exps[2], 2.227661, 0.25);
}

TEST(StoFit, HigherShellsFitWell)
{
    EXPECT_GT(fit_sto_ng(2, 1, 3).overlap, 0.995);
    EXPECT_GT(fit_sto_ng(3, 2, 3).overlap, 0.995);
    EXPECT_GT(fit_sto_ng(4, 0, 3).overlap, 0.98);
}

TEST(StoData, SlaterRules)
{
    // Textbook example: phosphorus 3p, zeta = (15 - 10.2)/3 = 1.60.
    EXPECT_NEAR(slater_zeta(15, 3, 1), 1.60, 1e-10);
    // Molecular override for hydrogen.
    EXPECT_NEAR(slater_zeta(1, 1, 0), 1.24, 1e-12);
}

TEST(StoData, ChromiumConfiguration)
{
    EXPECT_EQ(shell_occupation(24, 3, 2), 5); // 3d^5
    EXPECT_EQ(shell_occupation(24, 4, 0), 1); // 4s^1
    EXPECT_EQ(shell_occupation(24, 3, 1), 6);
    // 18 basis functions per Cr atom: 1s 2s 2p 3s 3p 4s 3d 4p.
    const AtomBasis& cr = sto3g_atom_basis(24);
    std::size_t functions = 0;
    for (const auto& shell : cr.shells) {
        functions += static_cast<std::size_t>(2 * shell.l + 1);
    }
    EXPECT_EQ(functions, 18u);
}

TEST(BasisSet, H2FunctionCountAndNormalization)
{
    const Molecule h2 = Molecule::diatomic("H", "H", 0.74);
    const BasisSet basis = BasisSet::sto3g(h2);
    ASSERT_EQ(basis.size(), 2u);
    const Matrix s = overlap_matrix(basis);
    EXPECT_NEAR(s(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(s(1, 1), 1.0, 1e-12);
}

TEST(BasisSet, SzaboOstlundH2Anchors)
{
    // H2 at R = 1.4 Bohr in STO-3G (zeta = 1.24): S12 = 0.6593,
    // T11 = 0.7600, (11|11) = 0.7746 (Szabo & Ostlund, Ch. 3).
    const Molecule h2 = Molecule::diatomic("H", "H", 1.4 / angstrom_to_bohr);
    const BasisSet basis = BasisSet::sto3g(h2);
    const Matrix s = overlap_matrix(basis);
    EXPECT_NEAR(s(0, 1), 0.6593, 2e-4);
    const Matrix t = kinetic_matrix(basis);
    EXPECT_NEAR(t(0, 0), 0.7600, 2e-4);
    const auto eri = eri_tensor(basis);
    EXPECT_NEAR(eri[eri_index(2, 0, 0, 0, 0)], 0.7746, 2e-4);
    EXPECT_NEAR(eri[eri_index(2, 0, 0, 1, 1)], 0.5697, 2e-4);
}

TEST(Scf, H2GroundStateEnergy)
{
    // Literature: E_RHF(H2/STO-3G, R = 1.4) = -1.1167 Hartree.
    const Molecule h2 = Molecule::diatomic("H", "H", 1.4 / angstrom_to_bohr);
    const BasisSet basis = BasisSet::sto3g(h2);
    const AoIntegrals ints = compute_ao_integrals(h2, basis);
    const ScfResult scf = rhf(h2, ints);
    EXPECT_TRUE(scf.converged);
    EXPECT_NEAR(scf.energy, -1.1167, 5e-4);
    // Koopmans sanity: occupied orbital below virtual.
    EXPECT_LT(scf.orbital_energies[0], scf.orbital_energies[1]);
}

TEST(Scf, HeHPlusCation)
{
    // Two-electron closed-shell cation; exercises nonzero charge.
    const Molecule hehp =
        Molecule::diatomic("He", "H", 1.4632 / angstrom_to_bohr, +1);
    const BasisSet basis = BasisSet::sto3g(hehp);
    const AoIntegrals ints = compute_ao_integrals(hehp, basis);
    const ScfResult scf = rhf(hehp, ints);
    EXPECT_TRUE(scf.converged);
    // Loose sanity window around the known ~-2.84 Hartree RHF value
    // (our He zeta differs slightly from the original tabulation).
    EXPECT_GT(scf.energy, -2.95);
    EXPECT_LT(scf.energy, -2.75);
}

TEST(Scf, WaterConvergesNearEquilibrium)
{
    const Molecule h2o = Molecule::bent("H", "O", 1.0, 104.5);
    const BasisSet basis = BasisSet::sto3g(h2o);
    ASSERT_EQ(basis.size(), 7u);
    const AoIntegrals ints = compute_ao_integrals(h2o, basis);
    const ScfResult scf = rhf(h2o, ints);
    EXPECT_TRUE(scf.converged);
    // STO-3G water near equilibrium is about -74.96 Hartree.
    EXPECT_NEAR(scf.energy, -74.96, 0.05);
}

TEST(Scf, DensityTracesToElectronCount)
{
    const Molecule h2 = Molecule::diatomic("H", "H", 0.9);
    const BasisSet basis = BasisSet::sto3g(h2);
    const AoIntegrals ints = compute_ao_integrals(h2, basis);
    const ScfResult scf = rhf(h2, ints);
    // tr(D S) = number of electrons.
    const Matrix ds = scf.density * ints.overlap;
    double trace = 0.0;
    for (std::size_t i = 0; i < ds.rows(); ++i) {
        trace += ds(i, i);
    }
    EXPECT_NEAR(trace, 2.0, 1e-8);
}

TEST(Scf, RejectsOpenShell)
{
    const Molecule h2p = Molecule::diatomic("H", "H", 1.0, +1);
    const BasisSet basis = BasisSet::sto3g(h2p);
    const AoIntegrals ints = compute_ao_integrals(h2p, basis);
    EXPECT_THROW(rhf(h2p, ints), std::invalid_argument);
}

TEST(Molecule, NuclearRepulsion)
{
    // Two protons at 1 Bohr: E_nn = 1 Hartree.
    const Molecule h2 =
        Molecule::diatomic("H", "H", 1.0 / angstrom_to_bohr);
    EXPECT_NEAR(h2.nuclear_repulsion(), 1.0, 1e-12);
    EXPECT_EQ(h2.num_electrons(), 2);
}

TEST(Molecule, Builders)
{
    const Molecule chain = Molecule::linear_chain("H", 6, 0.9);
    EXPECT_EQ(chain.atoms().size(), 6u);
    EXPECT_EQ(chain.num_electrons(), 6);

    const Molecule beh2 = Molecule::linear_symmetric("H", "Be", 1.32);
    EXPECT_EQ(beh2.atoms().size(), 3u);
    EXPECT_EQ(beh2.num_electrons(), 6);

    EXPECT_THROW(element_number("Xx"), std::invalid_argument);
    EXPECT_EQ(element_symbol(24), "Cr");
}

} // namespace
} // namespace cafqa::chem
