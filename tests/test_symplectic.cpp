// Differential property tests: the column-packed SymplecticTableau and
// batched StabilizerExpectationEngine against the legacy row-based
// Tableau oracle. Both representations are driven through the same
// replay templates, so any divergence is a packing bug, not a dispatch
// difference. Qubit counts deliberately cross the 64-bit word boundary
// (1..130). The whole file runs under the ASan+UBSan CI job like every
// other test binary.

#include <gtest/gtest.h>

#include <iterator>
#include <numbers>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "pauli/grouping.hpp"
#include "stabilizer/circuit_replay.hpp"
#include "stabilizer/expectation_engine.hpp"
#include "stabilizer/stabilizer_simulator.hpp"
#include "stabilizer/symplectic_tableau.hpp"
#include "stabilizer/tableau.hpp"

namespace cafqa {
namespace {

constexpr double half_pi = std::numbers::pi / 2.0;

/** Random Clifford circuit over the full supported gate set. */
Circuit
random_clifford_circuit(std::size_t n, int gates, Rng& rng)
{
    Circuit circuit(n);
    for (int g = 0; g < gates; ++g) {
        // Single-qubit-only choices for n == 1.
        const int max_choice = n >= 2 ? 12 : 8;
        const int choice = static_cast<int>(rng.uniform_int(0, max_choice));
        const auto q = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        auto q2 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (q2 == q) {
            q2 = (q + 1) % n;
        }
        const int k = static_cast<int>(rng.uniform_int(0, 3));
        switch (choice) {
          case 0: circuit.h(q); break;
          case 1: circuit.s(q); break;
          case 2: circuit.sdg(q); break;
          case 3: circuit.x(q); break;
          case 4: circuit.y(q); break;
          case 5: circuit.z(q); break;
          case 6: circuit.rx(q, k * half_pi); break;
          case 7: circuit.ry(q, k * half_pi); break;
          case 8: circuit.rz(q, k * half_pi); break;
          case 9: circuit.cx(q, q2); break;
          case 10: circuit.cz(q, q2); break;
          case 11: circuit.swap(q, q2); break;
          default: circuit.rzz(q, q2, k * half_pi); break;
        }
    }
    return circuit;
}

/** Random Hermitian Pauli string (random letters, random sign). */
PauliString
random_hermitian_pauli(std::size_t n, Rng& rng, double identity_bias = 0.5)
{
    PauliString p(n);
    for (std::size_t q = 0; q < n; ++q) {
        if (rng.bernoulli(identity_bias)) {
            continue;
        }
        p.set_letter(q, static_cast<PauliLetter>(rng.uniform_int(1, 3)));
    }
    if (rng.bernoulli(0.5)) {
        p.mul_phase(2);
    }
    return p;
}

/** Legacy reference: term loop over the row-based tableau. */
double
legacy_sum_expectation(const Tableau& tableau, const PauliSum& op)
{
    double total = 0.0;
    for (const auto& term : op.terms()) {
        const int e = tableau.expectation(term.string);
        if (e != 0) {
            total += term.coefficient.real() * e;
        }
    }
    return total;
}

/** Qubit counts crossing the word boundary, per the 1-130 contract. */
const std::size_t kQubitCounts[] = {1, 2, 3, 5, 63, 64, 65, 127, 128, 130};

class SymplecticDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SymplecticDifferential, GateForGateRowsMatchLegacyTableau)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 7);
    const std::size_t n =
        kQubitCounts[static_cast<std::size_t>(GetParam()) %
                     std::size(kQubitCounts)];
    const Circuit circuit =
        random_clifford_circuit(n, n >= 64 ? 120 : 60, rng);

    Tableau legacy(n);
    SymplecticTableau packed(n);
    std::size_t applied = 0;
    for (const auto& op : circuit.ops()) {
        replay_gate(legacy, op, is_rotation(op.kind) ? op.angle : 0.0);
        replay_gate(packed, op, is_rotation(op.kind) ? op.angle : 0.0);
        ++applied;
        // Compare every row after each gate on small systems; sample on
        // large ones to keep the quadratic comparison affordable.
        if (n <= 5 || applied % 20 == 0) {
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(packed.destabilizer(i), legacy.destabilizer(i))
                    << "destabilizer " << i << " after gate " << applied;
                ASSERT_EQ(packed.stabilizer(i), legacy.stabilizer(i))
                    << "stabilizer " << i << " after gate " << applied;
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(packed.destabilizer(i), legacy.destabilizer(i));
        ASSERT_EQ(packed.stabilizer(i), legacy.stabilizer(i));
    }
    EXPECT_TRUE(packed.check_invariants());
}

TEST_P(SymplecticDifferential, TermForTermExpectationsMatchLegacyTableau)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 24593 + 3);
    const std::size_t n =
        kQubitCounts[static_cast<std::size_t>(GetParam()) %
                     std::size(kQubitCounts)];

    Tableau legacy(n);
    SymplecticTableau packed(n);
    const Circuit circuit = random_clifford_circuit(n, 80, rng);
    replay_circuit(legacy, circuit);
    replay_circuit(packed, circuit);

    for (int probe = 0; probe < 60; ++probe) {
        // Mix dense and sparse supports; sparse ones are likelier to
        // commute with every stabilizer and exercise sign recovery.
        const double bias = (probe % 2 == 0) ? 0.5 : 0.9;
        const PauliString p = random_hermitian_pauli(n, rng, bias);
        ASSERT_EQ(packed.expectation(p), legacy.expectation(p))
            << "Pauli " << p.to_label();
    }
}

TEST_P(SymplecticDifferential, EngineMatchesLegacySumBitForBit)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 40961 + 11);
    const std::size_t n =
        kQubitCounts[static_cast<std::size_t>(GetParam()) %
                     std::size(kQubitCounts)];

    // >64 terms so the transposed strategy spans several term words —
    // the pooled evaluation below then really exercises the
    // block-chunked parallel path (a 64-term sum would fall back to
    // the serial fused pass).
    PauliSum op(n);
    for (int t = 0; t < 100; ++t) {
        const double coeff = rng.uniform_real(-2.0, 2.0);
        op.add_term(coeff, random_hermitian_pauli(n, rng, 0.8));
    }

    Tableau legacy(n);
    SymplecticTableau packed(n);
    const Circuit circuit = random_clifford_circuit(n, 70, rng);
    replay_circuit(legacy, circuit);
    replay_circuit(packed, circuit);

    const double reference = legacy_sum_expectation(legacy, op);

    // Exact equality: every strategy's canonical term-order reduction
    // is bit-identical to the legacy loop.
    const StabilizerExpectationEngine auto_engine(op);
    const StabilizerExpectationEngine grouped(
        op, ExpectationEngineOptions{.strategy = EvalStrategy::PerTerm});
    const StabilizerExpectationEngine ungrouped(
        op, ExpectationEngineOptions{.strategy = EvalStrategy::PerTerm,
                                     .use_grouping = false});
    const StabilizerExpectationEngine transposed(
        op,
        ExpectationEngineOptions{.strategy = EvalStrategy::Transposed});
    EXPECT_EQ(auto_engine.expectation(packed), reference);
    EXPECT_EQ(grouped.expectation(packed), reference);
    EXPECT_EQ(ungrouped.expectation(packed), reference);
    EXPECT_EQ(transposed.expectation(packed), reference);

    ThreadPool pool(3);
    EXPECT_EQ(grouped.expectation(packed, pool), reference);
    EXPECT_EQ(transposed.expectation(packed, pool), reference);
}

INSTANTIATE_TEST_SUITE_P(WordBoundarySweep, SymplecticDifferential,
                         ::testing::Range(0, 20));

TEST(SymplecticTableau, GuardsMatchLegacyContract)
{
    EXPECT_THROW(SymplecticTableau(0), std::invalid_argument);
    SymplecticTableau t(2);
    EXPECT_THROW(t.h(2), std::invalid_argument);
    EXPECT_THROW(t.cx(0, 0), std::invalid_argument);
    EXPECT_THROW(t.expectation(PauliString::from_label("ZZZ")),
                 std::invalid_argument);
    EXPECT_THROW(t.expectation(PauliString::from_label("+iZZ")),
                 std::invalid_argument);
    EXPECT_THROW(t.stabilizer(2), std::invalid_argument);
    EXPECT_THROW(t.destabilizer(2), std::invalid_argument);
}

TEST(StabilizerExpectationEngine, RejectsNonHermitianAndMismatchedSums)
{
    PauliSum bad(2);
    bad.add_term(std::complex<double>{0.5, 0.25},
                 PauliString::from_label("XX"));
    EXPECT_THROW(StabilizerExpectationEngine{bad}, std::invalid_argument);

    const PauliSum ok = PauliSum::from_terms(2, {{1.0, "ZZ"}});
    const StabilizerExpectationEngine engine(ok);
    SymplecticTableau wrong(3);
    EXPECT_THROW((void)engine.expectation(wrong), std::invalid_argument);
}

TEST(StabilizerExpectationEngine, GroupSharedSupportFastPath)
{
    // A diagonal (all-I/Z) sum groups into one measurement group; on a
    // computational-basis state every stabilizer is a Z string, so the
    // group's shared-support screening mask sees no X columns and the
    // per-term screening pass short-circuits — values must still match
    // the oracle exactly.
    const std::size_t n = 6;
    PauliSum diagonal(n);
    Rng rng(123);
    for (int t = 0; t < 12; ++t) {
        PauliString p(n);
        for (std::size_t q = 0; q < n; ++q) {
            if (rng.bernoulli(0.4)) {
                p.set_letter(q, PauliLetter::Z);
            }
        }
        diagonal.add_term(rng.uniform_real(-1.0, 1.0), p);
    }
    ASSERT_EQ(group_qubitwise_commuting(diagonal).size(), 1u);

    Tableau legacy(n);
    SymplecticTableau packed(n);
    Circuit flips(n);
    flips.x(1);
    flips.x(4);
    replay_circuit(legacy, flips);
    replay_circuit(packed, flips);

    const StabilizerExpectationEngine engine(
        diagonal,
        ExpectationEngineOptions{.strategy = EvalStrategy::PerTerm});
    EXPECT_EQ(engine.num_groups(), 1u);
    EXPECT_EQ(engine.strategy(), "per-term");
    EXPECT_EQ(engine.expectation(packed),
              legacy_sum_expectation(legacy, diagonal));
}

TEST(StabilizerSimulator, UsesPackedTableau)
{
    // The simulator front end now drives the packed representation; a
    // quick end-to-end sanity check against known GHZ values.
    const std::size_t n = 5;
    StabilizerSimulator sim(n);
    Circuit c(n);
    c.h(0);
    for (std::size_t q = 0; q + 1 < n; ++q) {
        c.cx(q, q + 1);
    }
    sim.apply_circuit(c);
    EXPECT_TRUE(sim.tableau().check_invariants());
    EXPECT_EQ(sim.expectation(PauliString::from_label("XXXXX")), 1);
    EXPECT_EQ(sim.expectation(PauliString::from_label("ZZIII")), 1);
    EXPECT_EQ(sim.expectation(PauliString::from_label("YYXXX")), -1);
    EXPECT_EQ(sim.expectation(PauliString::from_label("ZIIII")), 0);
}

} // namespace
} // namespace cafqa
