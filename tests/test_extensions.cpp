// Tests for the extension modules: RZZ/QAOA circuits, qubit-wise
// commuting measurement grouping, and the finite-shot evaluator.

#include <gtest/gtest.h>

#include <numbers>

#include "common/rng.hpp"
#include "core/cafqa_driver.hpp"
#include "core/sampled_evaluator.hpp"
#include "pauli/grouping.hpp"
#include "problems/maxcut.hpp"
#include "problems/molecule_factory.hpp"
#include "stabilizer/stabilizer_simulator.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {
namespace {

constexpr double half_pi = std::numbers::pi / 2.0;

TEST(Rzz, MatchesCxRzCxDecomposition)
{
    Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        const double theta = rng.uniform_real(0, 6.28);
        Circuit direct(3);
        direct.ry(0, 0.7);
        direct.ry(1, 1.3);
        direct.cx(0, 2);
        direct.rzz(0, 1, theta);

        Circuit decomposed(3);
        decomposed.ry(0, 0.7);
        decomposed.ry(1, 1.3);
        decomposed.cx(0, 2);
        decomposed.cx(0, 1);
        decomposed.rz(1, theta);
        decomposed.cx(0, 1);

        Statevector a(3);
        a.apply_circuit(direct);
        Statevector b(3);
        b.apply_circuit(decomposed);
        EXPECT_NEAR(std::abs(a.inner(b)), 1.0, 1e-12) << "theta " << theta;
    }
}

TEST(Rzz, TableauMatchesStatevectorAtCliffordAngles)
{
    Rng rng(9);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 3;
        Circuit c(n);
        c.h(0);
        c.h(1);
        c.h(2);
        for (int g = 0; g < 8; ++g) {
            const auto a = static_cast<std::size_t>(rng.uniform_int(0, 2));
            const auto b = (a + 1) % n;
            c.rzz(a, b, rng.uniform_int(0, 3) * half_pi);
            c.rx(a, rng.uniform_int(0, 3) * half_pi);
        }
        StabilizerSimulator tab(n);
        tab.apply_circuit(c);
        Statevector psi(n);
        psi.apply_circuit(c);
        for (int probe = 0; probe < 30; ++probe) {
            PauliString p(n);
            for (std::size_t q = 0; q < n; ++q) {
                p.set_letter(q,
                             static_cast<PauliLetter>(rng.uniform_int(0, 3)));
            }
            EXPECT_NEAR(psi.expectation(p).real(), tab.expectation(p),
                        1e-10)
                << p.to_label();
        }
    }
}

TEST(Qaoa, AnsatzShapeAndSharedParameters)
{
    const auto ring = problems::make_ring_maxcut(6);
    const Circuit qaoa = problems::make_qaoa_ansatz(ring, 2);
    EXPECT_EQ(qaoa.num_params(), 4u); // (gamma, beta) x 2 layers
    EXPECT_EQ(qaoa.count(GateKind::Rzz), 12u);
    EXPECT_EQ(qaoa.count(GateKind::Rx), 12u);
    EXPECT_EQ(qaoa.count(GateKind::H), 6u);
}

TEST(Qaoa, CafqaSearchOverQaoaSpace)
{
    // 2p discrete parameters: the whole space is tiny; CAFQA must find
    // the best Clifford QAOA point, and the zero point recovers the
    // |+...+> state with <H> = -|E|/2.
    const auto ring = problems::make_ring_maxcut(6);
    VqaObjective objective;
    objective.hamiltonian = ring.hamiltonian;
    const Circuit qaoa = problems::make_qaoa_ansatz(ring, 2);

    const CafqaResult exhaustive =
        exhaustive_clifford_search(qaoa, objective);
    const CafqaResult searched = run_cafqa(
        qaoa, objective, {.warmup = 60, .iterations = 80, .seed = 3});
    EXPECT_NEAR(searched.best_objective, exhaustive.best_objective, 1e-9);
    // |+> state gives <ZZ> = 0 per edge -> energy -E/2 = -3; the best
    // Clifford point can only improve on that.
    EXPECT_LE(exhaustive.best_objective, -3.0 + 1e-9);
}

TEST(Grouping, QubitwiseCommutationRules)
{
    const auto a = PauliString::from_label("XIZ");
    EXPECT_TRUE(qubitwise_commute(a, PauliString::from_label("XIZ")));
    EXPECT_TRUE(qubitwise_commute(a, PauliString::from_label("IIZ")));
    EXPECT_TRUE(qubitwise_commute(a, PauliString::from_label("XZI")));
    EXPECT_FALSE(qubitwise_commute(a, PauliString::from_label("YIZ")));
    EXPECT_FALSE(qubitwise_commute(a, PauliString::from_label("XIX")));
}

TEST(Grouping, PartitionCoversAllTermsPairwiseQwc)
{
    const auto system = problems::make_molecular_system("LiH", 1.6);
    const auto groups = group_qubitwise_commuting(system.hamiltonian);

    std::size_t covered = 0;
    for (const auto& group : groups) {
        covered += group.term_indices.size();
        for (std::size_t i = 0; i < group.term_indices.size(); ++i) {
            for (std::size_t j = i + 1; j < group.term_indices.size();
                 ++j) {
                EXPECT_TRUE(qubitwise_commute(
                    system.hamiltonian.terms()[group.term_indices[i]]
                        .string,
                    system.hamiltonian.terms()[group.term_indices[j]]
                        .string));
            }
        }
    }
    EXPECT_EQ(covered, system.hamiltonian.num_terms());
    // Grouping must reduce the number of measurement settings.
    EXPECT_LT(groups.size(), system.hamiltonian.num_terms());
}

TEST(SampledEvaluator, ConvergesToExactExpectation)
{
    const auto system = problems::make_molecular_system("H2", 1.2);
    std::vector<double> params(system.ansatz.num_params(), 0.0);
    Rng prng(3);
    for (auto& p : params) {
        p = prng.uniform_real(0, 6.28);
    }

    IdealEvaluator exact(system.ansatz);
    exact.prepare(params);
    const double truth = exact.expectation(system.hamiltonian);

    SampledEvaluator coarse(system.ansatz, 64, 11);
    coarse.prepare(params);
    SampledEvaluator fine(system.ansatz, 65536, 11);
    fine.prepare(params);

    // Average |error| over repeated estimates must shrink with shots.
    double coarse_err = 0.0;
    double fine_err = 0.0;
    for (int rep = 0; rep < 10; ++rep) {
        coarse_err += std::abs(coarse.expectation(system.hamiltonian) -
                               truth);
        fine_err += std::abs(fine.expectation(system.hamiltonian) - truth);
    }
    EXPECT_LT(fine_err, coarse_err);
    EXPECT_LT(fine_err / 10.0, 0.02);
}

TEST(SampledEvaluator, DeterministicOutcomesAreExact)
{
    // On a computational basis state, diagonal terms have zero variance:
    // any shot count gives the exact value.
    const std::size_t n = 3;
    Circuit c(n);
    c.x(0);
    c.x(2);
    const PauliSum op = PauliSum::from_terms(
        n, {{0.5, "ZII"}, {0.25, "IZI"}, {-1.0, "ZIZ"}, {2.0, "III"}});
    SampledEvaluator sampler(c, 8, 5);
    sampler.prepare({});
    // <ZII> = -1 (qubit 0 set), <IZI> = +1, <ZIZ> = +1, identity = 1.
    EXPECT_NEAR(sampler.expectation(op), 0.5 * -1 + 0.25 + -1.0 + 2.0,
                1e-12);
}

} // namespace
} // namespace cafqa
