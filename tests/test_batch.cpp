// RunSpec (parse/serialize round-trip, bad-spec rejection) and
// BatchRunner (concurrent execution equals solo execution, observer
// fan-in, per-run error capture) tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "core/batch_runner.hpp"
#include "core/run_spec.hpp"

namespace cafqa {
namespace {

TEST(RunSpec, DefaultsMirrorTheHistoricalCli)
{
    const RunSpec spec;
    EXPECT_EQ(spec.warmup, 200u);
    EXPECT_EQ(spec.iterations, 300u);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_EQ(spec.search, "bayes");
    EXPECT_EQ(spec.tuner, "spsa");
    EXPECT_TRUE(spec.hf_seed);
    EXPECT_EQ(spec.tune, 0u);
    EXPECT_FALSE(spec.cache);
}

TEST(RunSpec, ParsesEveryField)
{
    const RunSpec spec = RunSpec::parse(
        "problem=molecule:LiH?bond=2.4 label=demo warmup=10 "
        "iterations=20 seed=3 search=anneal hf-seed=0 max-t=1 tune=50 "
        "tune-backend=sampled tuner=nelder-mead budget=100 "
        "target-energy=-7.5 threads=2 cache=1 cache-capacity=4096");
    EXPECT_EQ(spec.problem, "molecule:LiH?bond=2.4");
    EXPECT_EQ(spec.label, "demo");
    EXPECT_EQ(spec.warmup, 10u);
    EXPECT_EQ(spec.iterations, 20u);
    EXPECT_EQ(spec.seed, 3u);
    EXPECT_EQ(spec.search, "anneal");
    EXPECT_FALSE(spec.hf_seed);
    EXPECT_EQ(spec.max_t, 1u);
    EXPECT_EQ(spec.tune, 50u);
    EXPECT_EQ(spec.tune_backend, "sampled");
    EXPECT_EQ(spec.tuner, "nelder-mead");
    EXPECT_EQ(spec.budget, 100u);
    EXPECT_DOUBLE_EQ(spec.target_energy.value(), -7.5);
    EXPECT_EQ(spec.threads, 2u);
    EXPECT_TRUE(spec.cache);
    EXPECT_EQ(spec.cache_capacity, 4096u);
}

TEST(RunSpec, TextRoundTrip)
{
    for (const char* text :
         {"problem=molecule:H2?bond=2.2",
          "problem=maxcut:ring-8 warmup=60 search=anneal",
          "problem=tfim:chain-6?h=1.25 iterations=40 seed=0 "
          "target-energy=-8.25 cache=1",
          "problem=xxz:chain-4 hf-seed=0 tune=50 tuner=nelder-mead "
          "max-t=2 budget=500 threads=3 cache-capacity=128 label=x"}) {
        SCOPED_TRACE(text);
        const RunSpec spec = RunSpec::parse(text);
        const RunSpec reparsed = RunSpec::parse(spec.to_string());
        EXPECT_EQ(reparsed, spec);
    }
}

TEST(RunSpec, JsonRoundTrip)
{
    const RunSpec spec = RunSpec::parse(
        "problem=molecule:LiH?bond=2.4 warmup=10 iterations=20 seed=3 "
        "search=anneal hf-seed=0 tune=50 target-energy=-7.5 cache=1");
    const std::string json = spec.to_json();
    EXPECT_EQ(RunSpec::from_json(json), spec);

    // Hand-written JSON with whitespace and reordered fields.
    const RunSpec parsed = RunSpec::from_json(
        R"({ "warmup": 60, "problem": "maxcut:ring-8", "cache": true })");
    EXPECT_EQ(parsed.problem, "maxcut:ring-8");
    EXPECT_EQ(parsed.warmup, 60u);
    EXPECT_TRUE(parsed.cache);
}

TEST(RunSpec, RejectsBadSpecs)
{
    // Unknown field, malformed token, bad numbers, duplicates.
    EXPECT_THROW(RunSpec::parse("bogus=1"), std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("warmup"), std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("=5"), std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("warmup=abc"), std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("warmup=0"), std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("threads=0"), std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("target-energy=nan"),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("cache=maybe"), std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("seed=1 seed=2"), std::invalid_argument);

    // The error names the accepted fields.
    try {
        RunSpec::parse("bogus=1");
        FAIL() << "unknown field accepted";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("bogus"), std::string::npos) << message;
        EXPECT_NE(message.find("accepted fields"), std::string::npos)
            << message;
        EXPECT_NE(message.find("problem"), std::string::npos) << message;
    }

    // Malformed JSON forms.
    EXPECT_THROW(RunSpec::from_json("not json"), std::invalid_argument);
    EXPECT_THROW(RunSpec::from_json("{\"problem\":"),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::from_json("{\"warmup\":0}"),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::from_json("{\"problem\":\"x\"} trailing"),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::from_json("{\"nope\":1}"),
                 std::invalid_argument);

    // A spec without a problem fails validation, not parsing.
    EXPECT_NO_THROW(RunSpec::parse("warmup=10"));
    EXPECT_THROW(RunSpec::parse("warmup=10").validate(),
                 std::invalid_argument);
}

TEST(RunSpec, SetOverridesAnyField)
{
    // The CLI's override hook: an explicit assignment wins even when
    // the assigned value equals the field's default.
    RunSpec spec = RunSpec::parse("problem=maxcut:ring-6 warmup=500");
    spec.set("warmup", "200"); // 200 is also the default
    EXPECT_EQ(spec.warmup, 200u);
    spec.set("tune-backend", "auto");
    EXPECT_EQ(spec.tune_backend, "");
    EXPECT_THROW(spec.set("bogus", "1"), std::invalid_argument);
    EXPECT_THROW(spec.set("warmup", "x"), std::invalid_argument);
}

TEST(RunSpec, RejectsWhitespaceInTextFields)
{
    // Text fields must survive the whitespace-tokenized text form, so
    // values with spaces or control characters are rejected in every
    // input form (this is what keeps parse(to_string()) lossless).
    EXPECT_THROW(RunSpec::from_json(R"({"label":"two words"})"),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::from_json("{\"problem\":\"a\\tb\"}"),
                 std::invalid_argument);
    RunSpec spec;
    EXPECT_THROW(spec.set("label", "two words"), std::invalid_argument);
    EXPECT_NO_THROW(spec.set("label", "two-words"));
}

TEST(RunSpec, ExactFlagSkipsTheReferenceSolve)
{
    RunSpec spec = RunSpec::parse(
        "problem=maxcut:ring-6 warmup=20 iterations=20 exact=0");
    EXPECT_FALSE(spec.exact);
    EXPECT_EQ(RunSpec::parse(spec.to_string()), spec); // round-trips
    const RunRecord record = execute_run_spec(spec);
    EXPECT_TRUE(record.ok);
    EXPECT_FALSE(record.exact_energy.has_value());
}

TEST(RunSpec, JsonlParsesLinesAndSkipsComments)
{
    const auto specs = parse_run_specs_jsonl(
        "# batch file\n"
        "{\"problem\":\"maxcut:ring-6\"}\n"
        "\n"
        "{\"problem\":\"tfim:chain-4\",\"warmup\":30}\n");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].problem, "maxcut:ring-6");
    EXPECT_EQ(specs[1].warmup, 30u);
}

TEST(RunSpec, PipelineConfigMirrorsTheCliWiring)
{
    const RunSpec spec = RunSpec::parse(
        "problem=tfim:chain-4 warmup=30 iterations=40 seed=9 tune=20 "
        "search=anneal tuner=nelder-mead budget=100 target-energy=-4.5 "
        "cache-capacity=64");
    const auto problem = problems::make_problem(spec.problem);
    const PipelineConfig config = make_pipeline_config(spec, problem);
    EXPECT_EQ(config.search.warmup, 30u);
    EXPECT_EQ(config.search.iterations, 40u);
    EXPECT_EQ(config.search.seed, 9u);
    EXPECT_EQ(config.tuner.iterations, 20u);
    EXPECT_EQ(config.tuner.seed, 10u); // historical CLI: seed + 1
    EXPECT_EQ(config.search_optimizer.kind, "anneal");
    EXPECT_EQ(config.tuner_optimizer.kind, "nelder-mead");
    EXPECT_EQ(config.stopping.max_evaluations, 100u);
    EXPECT_DOUBLE_EQ(config.stopping.target_value.value(), -4.5);
    EXPECT_TRUE(config.cache.enabled); // implied by cache-capacity
    EXPECT_EQ(config.cache.capacity, 64u);
    EXPECT_EQ(config.search.seed_steps, problem.seed_steps);

    RunSpec no_seed = spec;
    no_seed.hf_seed = false;
    EXPECT_TRUE(make_pipeline_config(no_seed, problem)
                    .search.seed_steps.empty());
}

/** The four-family batch used by the concurrency regression tests. */
std::vector<RunSpec>
sample_specs()
{
    return {
        RunSpec::parse("problem=molecule:H2?bond=1.5 warmup=30 "
                       "iterations=30 seed=5"),
        RunSpec::parse("problem=maxcut:ring-6 warmup=30 iterations=30 "
                       "search=anneal seed=6"),
        RunSpec::parse("problem=tfim:chain-4?h=0.8 warmup=30 "
                       "iterations=30 seed=7 tune=10"),
        RunSpec::parse("problem=xxz:chain-4?delta=0.5 warmup=30 "
                       "iterations=30 seed=8 max-t=1"),
    };
}

TEST(BatchRunner, ConcurrentResultsEqualSoloResults)
{
    const std::vector<RunSpec> specs = sample_specs();

    // Solo: each spec alone, sequentially.
    std::vector<RunRecord> solo;
    for (const auto& spec : specs) {
        solo.push_back(execute_run_spec(spec));
    }

    // Batch: all specs concurrently.
    BatchRunner runner;
    const std::vector<RunRecord> batch = runner.run(specs);

    ASSERT_EQ(batch.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
        SCOPED_TRACE(specs[i].problem);
        EXPECT_TRUE(batch[i].ok);
        EXPECT_EQ(batch[i].spec, specs[i]);
        EXPECT_EQ(batch[i].problem_key, solo[i].problem_key);
        // Bit-identical results regardless of concurrency.
        EXPECT_EQ(batch[i].best_objective, solo[i].best_objective);
        EXPECT_EQ(batch[i].cafqa_energy, solo[i].cafqa_energy);
        EXPECT_EQ(batch[i].tuned_value, solo[i].tuned_value);
        EXPECT_EQ(batch[i].evaluations_to_best,
                  solo[i].evaluations_to_best);
        EXPECT_EQ(batch[i].t_gates, solo[i].t_gates);
        EXPECT_EQ(batch[i].stop_reason, solo[i].stop_reason);
        EXPECT_EQ(batch[i].exact_energy, solo[i].exact_energy);
    }

    // A bounded-concurrency pool reproduces the same records too.
    BatchRunner bounded(BatchOptions{.concurrency = 2});
    const std::vector<RunRecord> with_two = bounded.run(specs);
    for (std::size_t i = 0; i < solo.size(); ++i) {
        EXPECT_EQ(with_two[i].cafqa_energy, solo[i].cafqa_energy);
        EXPECT_EQ(with_two[i].best_objective, solo[i].best_objective);
    }
}

TEST(BatchRunner, ObserverFanInTagsEveryRun)
{
    const std::vector<RunSpec> specs = sample_specs();

    BatchRunner runner;
    std::map<std::size_t, std::size_t> stage_ends;
    runner.set_observer([&](std::size_t index, const RunSpec& spec,
                            const PipelineEvent& event) {
        EXPECT_LT(index, specs.size());
        EXPECT_EQ(spec.problem, specs[index].problem);
        if (event.event == PipelineEvent::Kind::StageEnd) {
            ++stage_ends[index];
        }
    });
    const auto records = runner.run(specs);
    ASSERT_EQ(records.size(), specs.size());
    // Every run emitted at least its clifford_search StageEnd.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_GE(stage_ends[i], 1u) << "run " << i;
    }
}

TEST(BatchRunner, CapturesPerRunErrorsWithoutAbortingTheBatch)
{
    std::vector<RunSpec> specs = sample_specs();
    specs[1].problem = "molecule:Unobtainium?bond=1.0";
    specs.resize(3);

    BatchRunner runner;
    const auto records = runner.run(specs);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_TRUE(records[0].ok);
    EXPECT_FALSE(records[1].ok);
    EXPECT_NE(records[1].error.find("Unobtainium"), std::string::npos)
        << records[1].error;
    EXPECT_TRUE(records[2].ok);

    const std::string report = batch_results_json(records);
    EXPECT_NE(report.find("\"failed\": 1"), std::string::npos) << report;
    EXPECT_NE(report.find("\"total\": 3"), std::string::npos) << report;
}

TEST(BatchRunner, RecordJsonIsWellFormedAndRoundTripsTheSpec)
{
    const RunSpec spec = RunSpec::parse(
        "problem=maxcut:ring-6 warmup=30 iterations=30 label=ring");
    const RunRecord record = execute_run_spec(spec);
    const std::string json = record.to_json();
    EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"label\":\"ring\""), std::string::npos) << json;

    // The embedded spec string parses back to the submitted spec.
    const auto spec_pos = json.find("\"spec\":\"");
    ASSERT_NE(spec_pos, std::string::npos);
    const auto start = spec_pos + 8;
    const auto end = json.find('"', start);
    EXPECT_EQ(RunSpec::parse(json.substr(start, end - start)), spec);
}

TEST(BatchRunner, RespectsExplicitPerRunThreadCounts)
{
    // A spec that pins its own thread count keeps it (and still
    // produces identical results).
    RunSpec spec = RunSpec::parse(
        "problem=tfim:chain-4 warmup=30 iterations=30 threads=2");
    const RunRecord solo = execute_run_spec(spec);
    BatchRunner runner;
    const auto records = runner.run({spec});
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].ok);
    EXPECT_EQ(records[0].cafqa_energy, solo.cafqa_energy);
    EXPECT_EQ(records[0].spec.threads, 2u);
}

TEST(BatchRunner, RequestStopIsStickyUntilReset)
{
    // A stop raised before run(): nothing executes, every record is a
    // cancelled non-ok one.
    BatchRunner runner;
    runner.request_stop();
    EXPECT_TRUE(runner.stop_requested());
    const auto specs = std::vector<RunSpec>{
        RunSpec::parse("problem=maxcut:ring-6 warmup=4 iterations=4"),
        RunSpec::parse("problem=tfim:chain-4 warmup=4 iterations=4"),
    };
    const auto cancelled = runner.run(specs);
    ASSERT_EQ(cancelled.size(), 2u);
    for (const RunRecord& record : cancelled) {
        EXPECT_FALSE(record.ok);
        EXPECT_TRUE(record.cancelled);
        EXPECT_NE(record.error.find("cancelled before start"),
                  std::string::npos);
        // Cancelled records still serialize their flag.
        EXPECT_NE(record.to_json().find("\"cancelled\":true"),
                  std::string::npos);
    }

    // reset_stop re-arms the runner; the same specs then execute.
    runner.reset_stop();
    EXPECT_FALSE(runner.stop_requested());
    const auto records = runner.run(specs);
    for (const RunRecord& record : records) {
        EXPECT_TRUE(record.ok);
        EXPECT_FALSE(record.cancelled);
    }
}

TEST(BatchRunner, RequestStopCancelsInFlightRunsCooperatively)
{
    // One spec with a budget that would take ages: request_stop from
    // another thread must stop it at the next recorded evaluation,
    // keeping the best point found so far.
    BatchRunner runner;
    std::vector<RunRecord> records;
    std::thread batch([&] {
        records = runner.run({RunSpec::parse(
            "problem=maxcut:ring-8 search=anneal warmup=50000 "
            "iterations=2000000")});
    });
    runner.request_stop();
    batch.join();

    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].cancelled);
    if (records[0].ok) {
        // The run got far enough to record at least one evaluation:
        // best-so-far survives with the cancelled stop reason.
        EXPECT_EQ(records[0].stop_reason, "cancelled");
    } else {
        // Raced ahead of the first evaluation ("cancelled before
        // start") — also a valid outcome.
        EXPECT_NE(records[0].error.find("cancelled"), std::string::npos);
    }
}

TEST(BatchRunner, CancelWithTBoostRequestedKeepsCliffordBest)
{
    // Regression: a cancel during the Clifford stage skips run_t_boost.
    // Reading the record's best_objective must then fall back to the
    // Clifford result instead of throwing "run_t_boost() has not been
    // called" — which used to surface as a non-cancelled error record,
    // breaking the cancellation contract for specs with max-t > 0.
    RunContext context;
    context.cancel = std::make_shared<std::atomic<bool>>(true);
    const RunSpec spec = RunSpec::parse(
        "problem=maxcut:ring-6 warmup=4 iterations=4 max-t=2 tune=4");
    const RunRecord record = execute_run_spec(spec, context);
    EXPECT_TRUE(record.ok) << record.error;
    EXPECT_TRUE(record.cancelled);
    EXPECT_EQ(record.stop_reason, "cancelled");
    // The stages after the cancel never started...
    EXPECT_EQ(record.t_gates, 0u);
    EXPECT_FALSE(record.tuned_value.has_value());
    // ...and the Clifford best made it into the record.
    EXPECT_TRUE(std::isfinite(record.best_objective));
    EXPECT_NE(record.to_json().find("\"cancelled\":true"),
              std::string::npos);
}

} // namespace
} // namespace cafqa
