// Tests for the shared utilities: linear algebra, RNG, tables, and
// the thread pool (including its shutdown audit).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace cafqa {
namespace {

TEST(Matrix, BasicOps)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 3.0;
    a(1, 1) = 4.0;
    const Matrix at = a.transpose();
    EXPECT_EQ(at(0, 1), 3.0);
    const Matrix prod = a * Matrix::identity(2);
    EXPECT_EQ(prod.max_abs_diff(a), 0.0);
    Matrix sum = a + a;
    EXPECT_EQ(sum(1, 1), 8.0);
    sum *= 0.5;
    EXPECT_EQ(sum.max_abs_diff(a), 0.0);
}

TEST(SymmetricEigen, DiagonalMatrix)
{
    Matrix a(3, 3);
    a(0, 0) = 3.0;
    a(1, 1) = 1.0;
    a(2, 2) = 2.0;
    const SymmetricEigen eig = symmetric_eigen(a);
    EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
    EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
    EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(SymmetricEigen, ReconstructsMatrix)
{
    Rng rng(17);
    const std::size_t n = 6;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            a(i, j) = a(j, i) = rng.normal();
        }
    }
    const SymmetricEigen eig = symmetric_eigen(a);
    // A == V diag(w) V^T
    Matrix reconstructed(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                reconstructed(i, j) +=
                    eig.vectors(i, k) * eig.values[k] * eig.vectors(j, k);
            }
        }
    }
    EXPECT_LT(a.max_abs_diff(reconstructed), 1e-10);

    // Eigenvectors are orthonormal.
    const Matrix vtv = eig.vectors.transpose() * eig.vectors;
    EXPECT_LT(vtv.max_abs_diff(Matrix::identity(n)), 1e-10);
}

TEST(SolveLinear, RandomSystems)
{
    Rng rng(23);
    const std::size_t n = 5;
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
        x_true[i] = rng.normal();
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.normal();
        }
        a(i, i) += 4.0; // diagonally dominant, safely nonsingular
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            b[i] += a(i, j) * x_true[j];
        }
    }
    const std::vector<double> x = solve_linear(a, b);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], x_true[i], 1e-10);
    }
}

TEST(SolveLinear, SingularThrows)
{
    Matrix a(2, 2); // all zeros
    EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(InverseSqrt, SatisfiesDefinition)
{
    Rng rng(5);
    const std::size_t n = 4;
    // Build a well-conditioned SPD matrix A = B B^T + I.
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            b(i, j) = rng.normal();
        }
    }
    Matrix a = b * b.transpose();
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) += 1.0;
    }
    const Matrix s = inverse_sqrt(a);
    const Matrix should_be_identity = s * a * s;
    EXPECT_LT(should_be_identity.max_abs_diff(Matrix::identity(n)), 1e-9);
}

TEST(TridiagonalEigenvalues, KnownValues)
{
    // Tridiag(-1, 2, -1) of size n has eigenvalues 2 - 2cos(k pi/(n+1)).
    const std::size_t n = 8;
    std::vector<double> alpha(n, 2.0);
    std::vector<double> beta(n - 1, -1.0);
    const std::vector<double> values = tridiagonal_eigenvalues(alpha, beta);
    for (std::size_t k = 1; k <= n; ++k) {
        const double expected =
            2.0 - 2.0 * std::cos(k * M_PI / static_cast<double>(n + 1));
        EXPECT_NEAR(values[k - 1], expected, 1e-10);
    }
}

TEST(Rng, Reproducibility)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-3, 7);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, SampleWithoutReplacement)
{
    Rng rng(2);
    const auto sample = rng.sample_without_replacement(10, 6);
    EXPECT_EQ(sample.size(), 6u);
    const std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 6u);
    for (const auto v : sample) {
        EXPECT_LT(v, 10u);
    }
    EXPECT_THROW(rng.sample_without_replacement(3, 4),
                 std::invalid_argument);
}

TEST(Rng, RademacherIsBalanced)
{
    Rng rng(3);
    int sum = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
        sum += rng.rademacher();
    }
    EXPECT_LT(std::abs(sum), 400); // ~4 sigma
}

TEST(Table, AlignedOutput)
{
    Table t("demo");
    t.set_header({"name", "value"});
    t.add_row({"alpha", Table::num(1.5, 2)});
    t.add_row({"b", Table::sci(0.000123, 2)});
    std::ostringstream out;
    t.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);
    EXPECT_NE(text.find("1.23e-04"), std::string::npos);
}

TEST(Table, RowWidthValidation)
{
    Table t("demo");
    t.set_header({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 997;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::size_t worker, std::size_t index) {
        ASSERT_LT(worker, pool.size());
        hits[index].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, PropagatesTheFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](std::size_t, std::size_t index) {
                              if (index == 17) {
                                  throw std::runtime_error("boom");
                              }
                          }),
        std::runtime_error);
    // The pool must stay usable after a throwing job.
    std::atomic<std::size_t> done{0};
    pool.parallel_for(32, [&](std::size_t, std::size_t) {
        done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 32u);
}

TEST(ThreadPool, ConcurrentCallersAreSerializedNotLost)
{
    // Several threads funneling jobs through ONE pool at once: every
    // job must run to completion with nothing dropped (the shared()
    // pool sees exactly this from concurrent searches).
    ThreadPool pool(3);
    constexpr std::size_t kCallers = 4;
    constexpr std::size_t kPerJob = 100;
    std::atomic<std::size_t> total{0};
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&pool, &total] {
            for (int round = 0; round < 5; ++round) {
                pool.parallel_for(kPerJob,
                                  [&](std::size_t, std::size_t) {
                                      total.fetch_add(
                                          1, std::memory_order_relaxed);
                                  });
            }
        });
    }
    for (std::thread& caller : callers) {
        caller.join();
    }
    EXPECT_EQ(total.load(), kCallers * 5 * kPerJob);
}

TEST(ThreadPool, ShutdownStressNeverDropsTasks)
{
    // Destructor-vs-pending-work stress for the shutdown audit: pools
    // are torn down immediately after (and racing against) the tail
    // of a parallel_for. Every index must still have run — the audit
    // asserts inside the pool that no worker stops with tasks
    // pending, and this loop hammers the stop-flag/worker-wake
    // window where a lost task would hide.
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> ran{0};
        {
            ThreadPool pool(4);
            pool.parallel_for(23, [&](std::size_t, std::size_t) {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        } // pool destroyed here, right on the heels of the job
        ASSERT_EQ(ran.load(), 23u) << "round " << round;
    }
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    std::size_t count = 0;
    pool.parallel_for(10, [&](std::size_t worker, std::size_t) {
        EXPECT_EQ(worker, 0u);
        ++count; // inline execution: no synchronization needed
    });
    EXPECT_EQ(count, 10u);
}

} // namespace
} // namespace cafqa
