// Tests for the circuit IR and the EfficientSU2 ansatz builder.

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/circuit.hpp"
#include "circuit/efficient_su2.hpp"

namespace cafqa {
namespace {

TEST(Circuit, GateClassification)
{
    EXPECT_TRUE(is_rotation(GateKind::Rx));
    EXPECT_TRUE(is_rotation(GateKind::Ry));
    EXPECT_TRUE(is_rotation(GateKind::Rz));
    EXPECT_FALSE(is_rotation(GateKind::H));
    EXPECT_TRUE(is_two_qubit(GateKind::CX));
    EXPECT_TRUE(is_two_qubit(GateKind::Swap));
    EXPECT_FALSE(is_two_qubit(GateKind::T));
    EXPECT_EQ(gate_name(GateKind::Sdg), "sdg");
    EXPECT_EQ(gate_name(GateKind::CX), "cx");
}

TEST(Circuit, ParameterSlotAllocation)
{
    Circuit c(3);
    EXPECT_EQ(c.ry_param(0), 0);
    EXPECT_EQ(c.rz_param(1), 1);
    EXPECT_EQ(c.rx_param(2), 2);
    EXPECT_EQ(c.num_params(), 3u);
    c.ry(0, 1.5); // fixed angle takes no slot
    EXPECT_EQ(c.num_params(), 3u);
}

TEST(Circuit, ResolvedAngle)
{
    Circuit c(1);
    c.ry_param(0);
    c.ry(0, 0.25);
    const auto& ops = c.ops();
    EXPECT_NEAR(ops[0].resolved_angle({1.5}), 1.5, 1e-15);
    EXPECT_NEAR(ops[1].resolved_angle({1.5}), 0.25, 1e-15);
    EXPECT_THROW(ops[0].resolved_angle({}), std::invalid_argument);
}

TEST(Circuit, AppendShiftsParameterSlots)
{
    Circuit a(2);
    a.ry_param(0);
    Circuit b(2);
    b.rz_param(1);
    b.cx(0, 1);
    a.append(b);
    EXPECT_EQ(a.num_params(), 2u);
    EXPECT_EQ(a.ops()[1].param, 1);

    Circuit wrong(3);
    EXPECT_THROW(a.append(wrong), std::invalid_argument);
}

TEST(Circuit, Validation)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), std::invalid_argument);
    EXPECT_THROW(c.cx(0, 0), std::invalid_argument);
    EXPECT_THROW(c.swap(1, 1), std::invalid_argument);
}

TEST(Circuit, IsCliffordCheck)
{
    constexpr double half_pi = std::numbers::pi / 2.0;
    Circuit c(2);
    c.h(0);
    const int slot = c.ry_param(1);
    (void)slot;
    c.cx(0, 1);
    EXPECT_TRUE(c.is_clifford({2 * half_pi}));
    EXPECT_FALSE(c.is_clifford({0.3}));

    Circuit with_t(1);
    with_t.t(0);
    EXPECT_FALSE(with_t.is_clifford({}));
}

TEST(Circuit, CountAndToString)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.ry_param(2);
    EXPECT_EQ(c.count(GateKind::CX), 2u);
    EXPECT_EQ(c.count(GateKind::H), 1u);
    const std::string text = c.to_string();
    EXPECT_NE(text.find("cx q0, q1"), std::string::npos);
    EXPECT_NE(text.find("theta[0]"), std::string::npos);
}

TEST(EfficientSu2, DefaultShape)
{
    const Circuit c = make_efficient_su2(5);
    // 2 rotation blocks x (reps=1 + final layer) x 5 qubits.
    EXPECT_EQ(c.num_params(), 20u);
    EXPECT_EQ(c.count(GateKind::CX), 4u); // linear ladder
    EXPECT_EQ(c.count(GateKind::Ry), 10u);
    EXPECT_EQ(c.count(GateKind::Rz), 10u);
}

TEST(EfficientSu2, RepsAndBlocks)
{
    EfficientSu2Options options;
    options.reps = 3;
    options.rotation_blocks = {GateKind::Ry};
    const Circuit c = make_efficient_su2(4, options);
    EXPECT_EQ(c.num_params(), 4u * 1u * 4u); // (reps+final) * blocks * n
    EXPECT_EQ(c.count(GateKind::CX), 3u * 3u);

    options.final_rotation_layer = false;
    const Circuit c2 = make_efficient_su2(4, options);
    EXPECT_EQ(c2.num_params(), 4u * 3u);
}

TEST(EfficientSu2, RejectsBadOptions)
{
    EfficientSu2Options bad;
    bad.rotation_blocks = {GateKind::H};
    EXPECT_THROW(make_efficient_su2(2, bad), std::invalid_argument);
    EXPECT_THROW(make_efficient_su2(0), std::invalid_argument);
    EfficientSu2Options empty;
    empty.rotation_blocks = {};
    EXPECT_THROW(make_efficient_su2(2, empty), std::invalid_argument);
}

TEST(EfficientSu2, MicrobenchmarkAnsatz)
{
    const Circuit c = make_microbenchmark_ansatz();
    EXPECT_EQ(c.num_qubits(), 2u);
    EXPECT_EQ(c.num_params(), 1u);
    EXPECT_EQ(c.count(GateKind::CX), 1u);
}

} // namespace
} // namespace cafqa
