// Error-contract tests: every module must reject API misuse with
// std::invalid_argument (precondition violations) rather than crash or
// silently misbehave. Each test exercises a distinct guard.

#include <gtest/gtest.h>

#include "chem/basis.hpp"
#include "chem/boys.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecule.hpp"
#include "core/backend_registry.hpp"
#include "core/cafqa_driver.hpp"
#include "core/caching_backend.hpp"
#include "core/evaluator.hpp"
#include "core/hartree_fock_baseline.hpp"
#include "core/sampled_evaluator.hpp"
#include "density/density_matrix.hpp"
#include "mapping/encoding.hpp"
#include "mapping/z2_reduction.hpp"
#include "opt/bayes_opt.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/optimizer_registry.hpp"
#include "opt/spsa.hpp"
#include "core/batch_runner.hpp"
#include "core/run_spec.hpp"
#include "problems/maxcut.hpp"
#include "problems/molecule_factory.hpp"
#include "problems/problem.hpp"
#include "problems/spin_chains.hpp"
#include "stabilizer/expectation_engine.hpp"
#include "stabilizer/stabilizer_simulator.hpp"
#include "stabilizer/symplectic_tableau.hpp"
#include "stabilizer/tableau.hpp"
#include "statevector/lanczos.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {
namespace {

TEST(ErrorContracts, PauliQubitCountMismatch)
{
    PauliString a(3);
    const PauliString b(4);
    EXPECT_THROW(a *= b, std::invalid_argument);
    EXPECT_THROW((void)a.commutes_with(b), std::invalid_argument);
    EXPECT_THROW(a.remove_qubit(3), std::invalid_argument);

    PauliSum sum(3);
    EXPECT_THROW(sum.add_term(1.0, b), std::invalid_argument);
    EXPECT_THROW(PauliSum::from_terms(3, {{1.0, "XX"}}),
                 std::invalid_argument);
    EXPECT_THROW(PauliString::from_label("XQ"), std::invalid_argument);
}

TEST(ErrorContracts, TableauGuards)
{
    Tableau t(2);
    EXPECT_THROW(t.h(2), std::invalid_argument);
    EXPECT_THROW(t.cx(0, 0), std::invalid_argument);
    EXPECT_THROW(t.expectation(PauliString::from_label("ZZZ")),
                 std::invalid_argument);
    // Non-Hermitian Pauli (phase i) rejected.
    EXPECT_THROW(t.expectation(PauliString::from_label("+iZZ")),
                 std::invalid_argument);
    EXPECT_THROW(Tableau(0), std::invalid_argument);

    // The packed production tableau enforces the same contract.
    SymplecticTableau packed(2);
    EXPECT_THROW(packed.h(2), std::invalid_argument);
    EXPECT_THROW(packed.cx(0, 0), std::invalid_argument);
    EXPECT_THROW(packed.expectation(PauliString::from_label("+iZZ")),
                 std::invalid_argument);
    EXPECT_THROW(SymplecticTableau(0), std::invalid_argument);
}

TEST(ErrorContracts, StabilizerSumMustBeHermitian)
{
    // A mapping bug that produces complex coefficients must surface as
    // an error, not silently evaluate `.real()`.
    PauliSum complex_sum(2);
    complex_sum.add_term(std::complex<double>{0.5, 0.25},
                         PauliString::from_label("ZZ"));

    StabilizerSimulator sim(2);
    EXPECT_THROW((void)sim.expectation(complex_sum),
                 std::invalid_argument);
    EXPECT_THROW(StabilizerExpectationEngine{complex_sum},
                 std::invalid_argument);

    // An explicitly widened tolerance is the documented escape hatch.
    EXPECT_NO_THROW((void)sim.expectation(complex_sum, 0.5));

    // Roundoff-sized imaginary parts stay below the default tolerance.
    PauliSum nearly_real(2);
    nearly_real.add_term(std::complex<double>{1.0, 1e-12},
                         PauliString::from_label("ZZ"));
    EXPECT_NO_THROW((void)sim.expectation(nearly_real));
}

TEST(ErrorContracts, StatevectorGuards)
{
    EXPECT_THROW(Statevector(0), std::invalid_argument);
    EXPECT_THROW(Statevector(29), std::invalid_argument);
    EXPECT_THROW(Statevector::basis_state(2, 4), std::invalid_argument);

    Statevector psi(2);
    EXPECT_THROW(psi.apply_cx(0, 0), std::invalid_argument);
    EXPECT_THROW(psi.expectation(PauliString::from_label("Z")),
                 std::invalid_argument);

    Statevector zero(1);
    zero.amplitudes()[0] = {0.0, 0.0};
    EXPECT_THROW(zero.normalize(), std::invalid_argument);

    Circuit wrong(3);
    EXPECT_THROW(psi.apply_circuit(wrong), std::invalid_argument);
}

TEST(ErrorContracts, DensityMatrixGuards)
{
    EXPECT_THROW(DensityMatrix(13), std::invalid_argument);
    DensityMatrix rho(2);
    EXPECT_THROW(rho.depolarize_1q(0, 1.5), std::invalid_argument);
    EXPECT_THROW(rho.depolarize_2q(0, 0, 0.1), std::invalid_argument);
    EXPECT_THROW(rho.amplitude_damp(0, 2.0), std::invalid_argument);
    EXPECT_THROW(rho.apply_kraus_1q({}, 0), std::invalid_argument);
}

TEST(ErrorContracts, LanczosGuards)
{
    const PauliSum empty(2);
    EXPECT_THROW(lanczos_ground_state(empty), std::invalid_argument);

    PauliSum non_hermitian(1);
    non_hermitian.add_term(std::complex<double>{0.0, 1.0},
                           PauliString::from_label("X"));
    EXPECT_THROW(lanczos_ground_state(non_hermitian),
                 std::invalid_argument);

    // A filter that keeps nothing must be detected.
    const PauliSum h = PauliSum::from_terms(2, {{1.0, "ZZ"}});
    LanczosOptions options;
    options.basis_filter = [](std::uint64_t) { return false; };
    EXPECT_THROW(lanczos_ground_state(h, options), std::invalid_argument);

    EXPECT_THROW(dense_spectrum(non_hermitian), std::invalid_argument);
}

TEST(ErrorContracts, ChemistryGuards)
{
    EXPECT_THROW(chem::boys_function(-1, 1.0), std::invalid_argument);
    EXPECT_THROW(chem::element_number("Uuo"), std::invalid_argument);
    EXPECT_THROW(chem::element_symbol(99), std::invalid_argument);
    EXPECT_THROW(chem::Molecule(std::vector<chem::Atom>{}),
                 std::invalid_argument);
    EXPECT_THROW(chem::make_active_space(5, 3, 3), std::invalid_argument);
    // Coincident nuclei are rejected at E_nn evaluation.
    const chem::Molecule bad({chem::Atom{1, {0, 0, 0}},
                              chem::Atom{1, {0, 0, 0}}});
    EXPECT_THROW((void)bad.nuclear_repulsion(), std::invalid_argument);
}

TEST(ErrorContracts, EncodingGuards)
{
    const FermionEncoding enc(EncodingKind::Parity, 3);
    EXPECT_THROW((void)enc.majorana(6), std::invalid_argument);
    EXPECT_THROW((void)enc.occupation_to_bits({1, 0}),
                 std::invalid_argument);
    EXPECT_THROW(FermionEncoding(EncodingKind::Parity, 0),
                 std::invalid_argument);
}

TEST(ErrorContracts, Z2ReductionGuards)
{
    const PauliSum odd(3);
    EXPECT_THROW(reduce_two_qubits(odd, ParitySector{1, 1}),
                 std::invalid_argument);
    EXPECT_THROW(reduce_bits({1, 0, 1}), std::invalid_argument);
}

TEST(ErrorContracts, OptimizerGuards)
{
    EXPECT_THROW(
        nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
        std::invalid_argument);
    EXPECT_THROW(
        spsa_minimize([](const std::vector<double>&) { return 0.0; }, {}),
        std::invalid_argument);

    DecisionTree tree;
    EXPECT_THROW((void)tree.predict({1.0}), std::invalid_argument);
    RandomForest forest;
    EXPECT_THROW((void)forest.predict({1.0}), std::invalid_argument);

    DiscreteSpace empty;
    EXPECT_THROW(
        bayes_opt_minimize([](const std::vector<int>&) { return 0.0; },
                           empty, {}),
        std::invalid_argument);
    DiscreteSpace zero_card;
    zero_card.cardinalities = {4, 0};
    EXPECT_THROW(
        bayes_opt_minimize([](const std::vector<int>&) { return 0.0; },
                           zero_card, {}),
        std::invalid_argument);
}

TEST(ErrorContracts, OptimizerRegistryGuards)
{
    EXPECT_THROW(make_optimizer(optimizer_config("no-such-kind")),
                 std::invalid_argument);
    // Space/kind mismatches are rejected at construction time.
    EXPECT_THROW(make_discrete_optimizer(optimizer_config("nelder-mead")),
                 std::invalid_argument);
    EXPECT_THROW(make_continuous_optimizer(optimizer_config("anneal")),
                 std::invalid_argument);
    EXPECT_THROW(register_optimizer("", nullptr), std::invalid_argument);

    // Pipeline-level mismatch: a continuous tuner key handed to the
    // discrete search stage fails fast inside the stage.
    OptimizerConfig bad = optimizer_config("spsa");
    EXPECT_THROW(make_discrete_optimizer(bad), std::invalid_argument);
}

TEST(ErrorContracts, UnknownRegistryKeysListTheRegisteredOnes)
{
    // A typo'd kind must tell the caller which keys exist, not just
    // that theirs does not: assert the message names the registries'
    // built-ins.
    try {
        BackendConfig config;
        config.kind = "no-such-backend";
        make_backend(config);
        FAIL() << "make_backend accepted an unknown kind";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("no-such-backend"), std::string::npos)
            << message;
        EXPECT_NE(message.find("registered:"), std::string::npos)
            << message;
        for (const char* kind : {"clifford", "clifford_t", "statevector",
                                 "density", "sampled"}) {
            EXPECT_NE(message.find(kind), std::string::npos)
                << "missing \"" << kind << "\" in: " << message;
        }
        // ...and advertises the cache composition prefix.
        EXPECT_NE(message.find("cached:<kind>"), std::string::npos)
            << message;
    }

    // The "cached:" prefix resolves the inner kind through the same
    // factory, so a bad inner kind gets the same self-describing error.
    try {
        BackendConfig config;
        config.kind = "cached:no-such-backend";
        make_backend(config);
        FAIL() << "make_backend accepted an unknown cached kind";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("no-such-backend"), std::string::npos);
        EXPECT_NE(message.find("registered:"), std::string::npos);
    }

    try {
        make_optimizer(optimizer_config("no-such-optimizer"));
        FAIL() << "make_optimizer accepted an unknown kind";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("no-such-optimizer"), std::string::npos)
            << message;
        EXPECT_NE(message.find("registered:"), std::string::npos)
            << message;
        for (const char* kind : {"bayes", "anneal", "random", "exhaustive",
                                 "nelder-mead", "spsa"}) {
            EXPECT_NE(message.find(kind), std::string::npos)
                << "missing \"" << kind << "\" in: " << message;
        }
    }
}

TEST(ErrorContracts, PortfolioKeysRejectBadArms)
{
    // An empty arm list must explain the key grammar and name the
    // discrete kinds a portfolio can race.
    try {
        make_optimizer(optimizer_config("portfolio:"));
        FAIL() << "empty portfolio accepted";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("portfolio:<kind1+kind2+...>"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("portfolio:anneal+bayes+random"),
                  std::string::npos)
            << message;
        for (const char* kind : {"anneal", "bayes", "random",
                                 "tempering"}) {
            EXPECT_NE(message.find(kind), std::string::npos)
                << "missing \"" << kind << "\" in: " << message;
        }
    }
    // A dangling separator is an empty arm, not a silent skip.
    EXPECT_THROW(make_optimizer(optimizer_config("portfolio:anneal+")),
                 std::invalid_argument);

    // A typo'd arm names itself, the full key, and the registry's
    // kinds (the inner make_discrete_optimizer error is preserved).
    try {
        make_optimizer(optimizer_config("portfolio:anneal+nope"));
        FAIL() << "unknown portfolio arm accepted";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("portfolio arm \"nope\""),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("portfolio:anneal+nope"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("registered:"), std::string::npos)
            << message;
    }

    // Continuous kinds exist in the registry but cannot race in a
    // discrete portfolio.
    try {
        make_optimizer(optimizer_config("portfolio:anneal+spsa"));
        FAIL() << "continuous portfolio arm accepted";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("portfolio arm \"spsa\""),
                  std::string::npos)
            << message;
    }

    // Portfolios do not nest.
    try {
        make_optimizer(
            optimizer_config("portfolio:anneal+portfolio:random"));
        FAIL() << "nested portfolio accepted";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("cannot nest"),
                  std::string::npos)
            << error.what();
    }
}

TEST(ErrorContracts, WarmStartFieldRejectsMalformedSteps)
{
    // Every malformed token fails the parse with the field grammar.
    EXPECT_THROW(RunSpec::parse("problem=a warm-start=1,9"),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("problem=a warm-start=x"),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("problem=a warm-start="),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("problem=a warm-start=1,,2"),
                 std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("problem=a warm-start=-1"),
                 std::invalid_argument);
    try {
        RunSpec::parse("problem=a warm-start=1,9");
        FAIL() << "out-of-range step accepted";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("warm-start"), std::string::npos)
            << message;
        EXPECT_NE(message.find("quarter-turn steps"), std::string::npos)
            << message;
        EXPECT_NE(message.find("\"9\""), std::string::npos) << message;
    }
    // The underscore alias routes through the same guard.
    EXPECT_THROW(RunSpec::parse("problem=a warm_start=4"),
                 std::invalid_argument);

    // A well-formed value of the wrong length for the problem is
    // rejected when the pipeline config is built, naming both counts.
    RunSpec spec = RunSpec::parse(
        "problem=maxcut:ring-6 warm-start=1,2 warmup=5 iterations=5");
    const problems::Problem problem =
        problems::make_problem(spec.problem);
    try {
        make_pipeline_config(spec, problem);
        FAIL() << "wrong-length warm start accepted";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("warm-start"), std::string::npos)
            << message;
        EXPECT_NE(message.find("2 steps"), std::string::npos) << message;
        EXPECT_NE(message.find("ansatz parameters"), std::string::npos)
            << message;
    }
}

TEST(ErrorContracts, CacheGuards)
{
    Circuit ansatz(2);
    ansatz.ry_param(0);

    BackendConfig config;
    config.kind = "clifford";
    config.ansatz = ansatz;
    config.cache.enabled = true;
    config.cache.capacity = 0;
    EXPECT_THROW(make_backend(config), std::invalid_argument);

    config.cache.capacity = 16;
    config.cache.shards = 0;
    EXPECT_THROW(make_backend(config), std::invalid_argument);

    CacheOptions options;
    EXPECT_THROW(CachingDiscreteBackend(nullptr, options),
                 std::invalid_argument);

    options.resolution = 0.0;
    EXPECT_THROW(CachingContinuousBackend(
                     std::make_unique<IdealEvaluator>(ansatz), options),
                 std::invalid_argument);
}

TEST(ErrorContracts, EvaluatorGuards)
{
    Circuit ansatz(2);
    ansatz.ry_param(0);
    const PauliSum op = PauliSum::from_terms(2, {{1.0, "ZZ"}});

    CliffordEvaluator clifford(ansatz);
    EXPECT_THROW((void)clifford.expectation(op), std::invalid_argument);

    IdealEvaluator ideal(ansatz);
    EXPECT_THROW((void)ideal.expectation(op), std::invalid_argument);

    NoisyEvaluator noisy(ansatz, NoiseModel{});
    EXPECT_THROW((void)noisy.expectation(op), std::invalid_argument);

    SampledEvaluator sampled(ansatz, 16, 1);
    EXPECT_THROW((void)sampled.expectation(op), std::invalid_argument);
    EXPECT_THROW(SampledEvaluator(ansatz, 0, 1), std::invalid_argument);
}

TEST(ErrorContracts, DriverGuards)
{
    Circuit ansatz(2);
    ansatz.ry_param(0);
    VqaObjective objective;
    objective.hamiltonian = PauliSum::from_terms(3, {{1.0, "ZZZ"}});
    EXPECT_THROW(run_cafqa(ansatz, objective), std::invalid_argument);

    Circuit big(2);
    for (int i = 0; i < 13; ++i) {
        big.ry_param(0);
    }
    VqaObjective ok;
    ok.hamiltonian = PauliSum::from_terms(2, {{1.0, "ZZ"}});
    EXPECT_THROW(exhaustive_clifford_search(big, ok),
                 std::invalid_argument);

    EXPECT_THROW(
        basis_state_expectation(ok.hamiltonian, {1, 0, 1}),
        std::invalid_argument);

    // Infeasible constraints in the bitstring search.
    EXPECT_THROW(best_constrained_bitstring(
                     ok.hamiltonian,
                     {{PauliSum::from_terms(2, {{1.0, "II"}}), 5.0}}, 2),
                 std::invalid_argument);
}

TEST(ErrorContracts, ProblemGuards)
{
    EXPECT_THROW(problems::make_random_maxcut(1, 0.5, 1, "x"),
                 std::invalid_argument);
    EXPECT_THROW(problems::make_ring_maxcut(2), std::invalid_argument);
    const auto ring = problems::make_ring_maxcut(4);
    EXPECT_THROW(problems::make_qaoa_ansatz(ring, 0),
                 std::invalid_argument);
    EXPECT_THROW(problems::molecule_info("Unobtainium"),
                 std::invalid_argument);

    // Sector that cannot fit the active space.
    problems::MolecularSystemOptions options;
    options.sector_spin_2sz = 8; // H2 has only 2 active orbitals
    EXPECT_THROW(problems::make_molecular_system("H2", 0.74, options),
                 std::invalid_argument);

    // Spin chains need at least two sites (three for a ring).
    EXPECT_THROW(problems::make_tfim_chain(1, 1.0, 1.0, false),
                 std::invalid_argument);
    EXPECT_THROW(problems::make_xxz_chain(2, 1.0, 1.0, true),
                 std::invalid_argument);
}

TEST(ErrorContracts, MaxCutBruteForceLimitIsExplicit)
{
    // optimal_cut must refuse intractable instances with an error that
    // names the limit and the offending size, instead of silently
    // enumerating 2^n assignments.
    const auto big = problems::make_ring_maxcut(25);
    try {
        (void)big.optimal_cut();
        FAIL() << "optimal_cut accepted 25 vertices";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("24"), std::string::npos) << message;
        EXPECT_NE(message.find("25"), std::string::npos) << message;
    }
    // The brute-force cap is part of the public contract.
    EXPECT_EQ(problems::MaxCutProblem::max_brute_force_vertices, 24u);
    // At the registry level, an oversized instance simply has no exact
    // solver instead of a throwing one.
    EXPECT_FALSE(problems::make_problem("maxcut:ring-25")
                     .exact_energy()
                     .has_value());
}

TEST(ErrorContracts, ProblemRegistryUnknownKeysListTheRegisteredOnes)
{
    // A typo'd family must tell the caller which families exist,
    // mirroring the backend/optimizer registry contract.
    try {
        problems::make_problem("no-such-family:thing");
        FAIL() << "make_problem accepted an unknown family";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("no-such-family"), std::string::npos)
            << message;
        EXPECT_NE(message.find("registered:"), std::string::npos)
            << message;
        for (const char* family : {"molecule", "maxcut", "tfim", "xxz"}) {
            EXPECT_NE(message.find(family), std::string::npos)
                << "missing \"" << family << "\" in: " << message;
        }
    }

    // Unknown query parameters are rejected naming the accepted ones.
    try {
        problems::make_problem("tfim:chain-4?bogus=1");
        FAIL() << "make_problem accepted an unknown parameter";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("bogus"), std::string::npos) << message;
        EXPECT_NE(message.find("accepted"), std::string::npos) << message;
        EXPECT_NE(message.find("h"), std::string::npos) << message;
    }

    // Malformed instances and parameter values.
    EXPECT_THROW(problems::make_problem("tfim:blob-4"),
                 std::invalid_argument);
    EXPECT_THROW(problems::make_problem("tfim:chain-x"),
                 std::invalid_argument);
    EXPECT_THROW(problems::make_problem("tfim:chain-4?h=abc"),
                 std::invalid_argument);
    EXPECT_THROW(problems::make_problem("maxcut:er-8?p=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(problems::make_problem("maxcut:ring-6?ansatz=ucc"),
                 std::invalid_argument);
    EXPECT_THROW(problems::make_problem("molecule:H2?bond=-1"),
                 std::invalid_argument);
    EXPECT_THROW(problems::make_problem("molecule:Xe2?bond=1"),
                 std::invalid_argument);
}

TEST(ErrorContracts, RunSpecGuards)
{
    EXPECT_THROW(RunSpec::parse("bogus=1"), std::invalid_argument);
    EXPECT_THROW(RunSpec::parse("warmup=1x"), std::invalid_argument);
    EXPECT_THROW(RunSpec::from_json("[1,2]"), std::invalid_argument);
    EXPECT_THROW(RunSpec{}.validate(), std::invalid_argument);
    EXPECT_THROW(BatchRunner(BatchOptions{.run_threads = 0}),
                 std::invalid_argument);
}

TEST(ErrorContracts, RunSpecRejectsDuplicateFields)
{
    // Duplicates are a hard error (never silent last-wins), in both
    // input forms.
    EXPECT_THROW(RunSpec::parse("problem=a seed=1 seed=2"),
                 std::invalid_argument);
    EXPECT_THROW(
        RunSpec::from_json(R"({"problem":"a","seed":1,"seed":2})"),
        std::invalid_argument);
    try {
        RunSpec::from_json(R"({"problem":"a","seed":1,"seed":2})");
        FAIL() << "duplicate field accepted";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("more than once"),
                  std::string::npos)
            << error.what();
    }
}

TEST(ErrorContracts, JsonlErrorsNameTheOffendingLine)
{
    const std::string text = "{\"problem\":\"maxcut:ring-6\"}\n"
                             "# comment\n"
                             "\n"
                             "{\"problem\":\"a\",\"warmup\":0}\n";
    try {
        parse_run_specs_jsonl(text);
        FAIL() << "bad jsonl accepted";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        // 1-based line number (comments and blanks count) + a snippet
        // of the offending line + the underlying field error.
        EXPECT_NE(what.find("jsonl line 4"), std::string::npos) << what;
        EXPECT_NE(what.find("{\"problem\":\"a\",\"warmup\":0}"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("warmup"), std::string::npos) << what;
    }
}

} // namespace
} // namespace cafqa
