// Tests for the fermion-to-qubit encodings and the Z2 two-qubit
// reduction: canonical anticommutation relations, encoding-independent
// spectra, and sector-correct reduced Hamiltonians.

#include <gtest/gtest.h>

#include <algorithm>

#include "chem/basis.hpp"
#include "chem/fermion.hpp"
#include "chem/molecule.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/scf.hpp"
#include "mapping/encoding.hpp"
#include "mapping/z2_reduction.hpp"
#include "statevector/lanczos.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {
namespace {

using chem::AoIntegrals;
using chem::BasisSet;
using chem::Molecule;
using chem::MoIntegrals;
using chem::ScfResult;

/** Frobenius-zero check for a Pauli sum. */
bool
is_zero(PauliSum op)
{
    op.simplify();
    return op.num_terms() == 0;
}

class EncodingAlgebra
    : public ::testing::TestWithParam<EncodingKind> {};

TEST_P(EncodingAlgebra, MajoranasAnticommuteAndSquareToOne)
{
    const FermionEncoding enc(GetParam(), 4);
    for (std::size_t j = 0; j < 8; ++j) {
        const PauliString gj = enc.majorana(j);
        EXPECT_TRUE(gj.is_hermitian());
        const PauliString sq = gj * gj;
        EXPECT_TRUE(sq.is_identity_letters());
        for (std::size_t k = j + 1; k < 8; ++k) {
            EXPECT_FALSE(gj.commutes_with(enc.majorana(k)))
                << "gamma_" << j << ", gamma_" << k;
        }
    }
}

TEST_P(EncodingAlgebra, CanonicalAnticommutationRelations)
{
    const std::size_t m = 3;
    const FermionEncoding enc(GetParam(), m);
    for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t q = 0; q < m; ++q) {
            // {a_p, a_q^dag} = delta_pq.
            PauliSum anti = enc.annihilation(p) * enc.creation(q) +
                            enc.creation(q) * enc.annihilation(p);
            if (p == q) {
                anti -= PauliSum::from_terms(m, {{1.0, "III"}});
            }
            EXPECT_TRUE(is_zero(anti)) << "p=" << p << " q=" << q;

            // {a_p, a_q} = 0.
            PauliSum aa = enc.annihilation(p) * enc.annihilation(q) +
                          enc.annihilation(q) * enc.annihilation(p);
            EXPECT_TRUE(is_zero(aa));
        }
    }
}

TEST_P(EncodingAlgebra, NumberOperatorOnBasisStates)
{
    const std::size_t m = 4;
    const FermionEncoding enc(GetParam(), m);
    // Occupation (1,0,1,1): every number operator must read back its bit.
    const std::vector<int> occ = {1, 0, 1, 1};
    const std::vector<int> bits = enc.occupation_to_bits(occ);
    std::uint64_t index = 0;
    for (std::size_t q = 0; q < m; ++q) {
        if (bits[q] != 0) {
            index |= std::uint64_t{1} << q;
        }
    }
    const Statevector psi = Statevector::basis_state(m, index);
    for (std::size_t p = 0; p < m; ++p) {
        EXPECT_NEAR(psi.expectation(enc.number_operator(p)), occ[p], 1e-12)
            << "mode " << p;
    }
    EXPECT_NEAR(psi.expectation(chem::total_number_operator(enc)), 3.0,
                1e-12);
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, EncodingAlgebra,
                         ::testing::Values(EncodingKind::JordanWigner,
                                           EncodingKind::Parity));

TEST(SzOperator, BlockOrderingSigns)
{
    const FermionEncoding enc(EncodingKind::JordanWigner, 4); // 2 spatial
    const PauliSum sz = chem::sz_operator(enc);
    // One alpha electron in mode 0: S_z = +1/2.
    const Statevector up = Statevector::basis_state(4, 0b0001);
    EXPECT_NEAR(up.expectation(sz), 0.5, 1e-12);
    // One beta electron in mode 2: S_z = -1/2.
    const Statevector down = Statevector::basis_state(4, 0b0100);
    EXPECT_NEAR(down.expectation(sz), -0.5, 1e-12);
}

struct H2Fixture
{
    Molecule molecule = Molecule::diatomic("H", "H", 0.74);
    BasisSet basis = BasisSet::sto3g(molecule);
    AoIntegrals ints = chem::compute_ao_integrals(molecule, basis);
    ScfResult scf = chem::rhf(molecule, ints);
    MoIntegrals mo = chem::transform_to_mo(
        ints, scf, chem::make_active_space(2, 0, 2), molecule);
};

TEST(QubitHamiltonian, JordanWignerAndParityShareSpectrum)
{
    H2Fixture fx;
    const FermionEncoding jw(EncodingKind::JordanWigner, 4);
    const FermionEncoding parity(EncodingKind::Parity, 4);
    const PauliSum h_jw = chem::build_qubit_hamiltonian(fx.mo, jw);
    const PauliSum h_parity = chem::build_qubit_hamiltonian(fx.mo, parity);

    const auto spec_jw = dense_spectrum(h_jw);
    const auto spec_parity = dense_spectrum(h_parity);
    ASSERT_EQ(spec_jw.size(), spec_parity.size());
    for (std::size_t i = 0; i < spec_jw.size(); ++i) {
        EXPECT_NEAR(spec_jw[i], spec_parity[i], 1e-8) << "level " << i;
    }
}

TEST(QubitHamiltonian, HartreeFockDeterminantMatchesScfEnergy)
{
    H2Fixture fx;
    const FermionEncoding enc(EncodingKind::Parity, 4);
    const PauliSum h = chem::build_qubit_hamiltonian(fx.mo, enc);

    const std::vector<int> occ = chem::hartree_fock_occupation(2, 1, 1);
    const std::vector<int> bits = enc.occupation_to_bits(occ);
    std::uint64_t index = 0;
    for (std::size_t q = 0; q < bits.size(); ++q) {
        if (bits[q] != 0) {
            index |= std::uint64_t{1} << q;
        }
    }
    const Statevector hf = Statevector::basis_state(4, index);
    EXPECT_NEAR(hf.expectation(h), fx.scf.energy, 1e-8);
}

TEST(Z2Reduction, PreservesGroundEnergyInSector)
{
    H2Fixture fx;
    const FermionEncoding parity(EncodingKind::Parity, 4);
    const PauliSum h_full = chem::build_qubit_hamiltonian(fx.mo, parity);
    const PauliSum h_red =
        reduce_two_qubits(h_full, ParitySector{1, 1});
    EXPECT_EQ(h_red.num_qubits(), 2u);

    // The reduced ground energy must match the full ground energy
    // (H2 singlet ground state lives in the (1,1) sector).
    const auto full_spec = dense_spectrum(h_full);
    const auto red_spec = dense_spectrum(h_red);
    EXPECT_NEAR(red_spec.front(), full_spec.front(), 1e-8);

    // Every reduced eigenvalue appears in the full spectrum.
    for (const double ev : red_spec) {
        const bool found = std::any_of(
            full_spec.begin(), full_spec.end(),
            [ev](double v) { return std::abs(v - ev) < 1e-7; });
        EXPECT_TRUE(found) << "eigenvalue " << ev;
    }
}

TEST(Z2Reduction, HartreeFockBitsConsistent)
{
    // Expectation of the reduced Hamiltonian on the reduced HF bitstring
    // still equals the SCF energy.
    H2Fixture fx;
    const FermionEncoding parity(EncodingKind::Parity, 4);
    const PauliSum h_full = chem::build_qubit_hamiltonian(fx.mo, parity);
    const PauliSum h_red = reduce_two_qubits(h_full, ParitySector{1, 1});

    const std::vector<int> occ = chem::hartree_fock_occupation(2, 1, 1);
    const std::vector<int> bits =
        reduce_bits(parity.occupation_to_bits(occ));
    std::uint64_t index = 0;
    for (std::size_t q = 0; q < bits.size(); ++q) {
        if (bits[q] != 0) {
            index |= std::uint64_t{1} << q;
        }
    }
    const Statevector hf = Statevector::basis_state(2, index);
    EXPECT_NEAR(hf.expectation(h_red), fx.scf.energy, 1e-8);
}

TEST(Z2Reduction, RejectsSymmetryBreakingOperators)
{
    const PauliSum bad = PauliSum::from_terms(4, {{1.0, "IXIX"}});
    EXPECT_THROW(reduce_two_qubits(bad, ParitySector{1, 1}),
                 std::invalid_argument);
}

TEST(Z2Reduction, BitReduction)
{
    const std::vector<int> bits = {1, 0, 1, 1};
    const std::vector<int> reduced = reduce_bits(bits);
    ASSERT_EQ(reduced.size(), 2u);
    EXPECT_EQ(reduced[0], 1);
    EXPECT_EQ(reduced[1], 1);
}

TEST(QubitHamiltonian, H2FciEnergyRecoversCorrelation)
{
    H2Fixture fx;
    const FermionEncoding parity(EncodingKind::Parity, 4);
    const PauliSum h = reduce_two_qubits(
        chem::build_qubit_hamiltonian(fx.mo, parity), ParitySector{1, 1});
    const auto spectrum = dense_spectrum(h);
    const double fci = spectrum.front();
    // Correlation energy of H2/STO-3G near equilibrium is ~0.02 Hartree.
    EXPECT_LT(fci, fx.scf.energy - 0.005);
    EXPECT_GT(fci, fx.scf.energy - 0.1);
}

} // namespace
} // namespace cafqa
