// Tests for the search orchestration subsystem (src/search/): the
// parallel tempering optimizer, the portfolio racer (parity with bare
// optimizers, merged-trace attribution, kill/rebalance, cancellation)
// and the cross-run warm-start layer (RunSpec field, pipeline seeding,
// BatchRunner hand-off chaining).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "core/batch_runner.hpp"
#include "core/run_spec.hpp"
#include "opt/optimizer_registry.hpp"
#include "search/parallel_tempering.hpp"
#include "search/portfolio.hpp"

namespace cafqa {
namespace {

/** Planted optimum at {1, 3, 0} on {0..3}^3 (64 configurations). */
const std::vector<int> kPlanted = {1, 3, 0};

double
planted_objective(const std::vector<int>& config)
{
    double s = 0.0;
    for (std::size_t i = 0; i < config.size(); ++i) {
        s += std::abs(config[i] - kPlanted[i]);
    }
    return s;
}

DiscreteSpace
planted_space()
{
    DiscreteSpace space;
    space.cardinalities.assign(3, 4);
    return space;
}

void
expect_same_outcome(const OptimizeOutcome& a, const OptimizeOutcome& b)
{
    EXPECT_EQ(a.history, b.history);
    EXPECT_EQ(a.best_trace, b.best_trace);
    EXPECT_EQ(a.best_config, b.best_config);
    EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.evaluations_to_best, b.evaluations_to_best);
    EXPECT_EQ(a.stop_reason, b.stop_reason);
}

// ---------------------------------------------------------------------
// Parallel tempering.
// ---------------------------------------------------------------------

TEST(ParallelTempering, BatchedTrajectoryMatchesSerial)
{
    TemperingOptions options;
    options.seed = 19;
    options.sweeps = 40;
    ParallelTempering serial(options);
    const OptimizeOutcome a =
        serial.minimize(planted_objective, planted_space());

    SearchContext context;
    context.batch = [](const std::vector<std::vector<int>>& block) {
        std::vector<double> values;
        values.reserve(block.size());
        for (const auto& config : block) {
            values.push_back(planted_objective(config));
        }
        return values;
    };
    ParallelTempering batched(options);
    const OptimizeOutcome b =
        batched.minimize(planted_objective, planted_space(), {}, context);
    expect_same_outcome(a, b);
}

TEST(ParallelTempering, SingleReplicaIsValid)
{
    TemperingOptions options;
    options.replicas = 1;
    options.sweeps = 60;
    const OptimizeOutcome r = ParallelTempering(options).minimize(
        planted_objective, planted_space());
    EXPECT_EQ(r.history.size(), 60u);
    EXPECT_EQ(r.stop_reason, StopReason::BudgetExhausted);
}

TEST(ParallelTempering, RejectsBadOptions)
{
    TemperingOptions options;
    options.min_temperature = 0.0;
    EXPECT_THROW(ParallelTempering(options).minimize(planted_objective,
                                                     planted_space()),
                 std::invalid_argument);
    options = {};
    options.replicas = 0;
    EXPECT_THROW(ParallelTempering(options).minimize(planted_objective,
                                                     planted_space()),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Portfolio racing.
// ---------------------------------------------------------------------

/** Bare optimizer vs the same kind wrapped as a one-arm portfolio:
 *  they must be bit-identical (the parity anchor of the subsystem). */
class PortfolioParity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PortfolioParity, OneArmPortfolioIsBitIdenticalToBareOptimizer)
{
    StoppingCriteria criteria;
    criteria.max_evaluations = 120;

    OptimizerConfig bare = optimizer_config(GetParam());
    bare.seed = 41;
    const OptimizeOutcome a = make_discrete_optimizer(bare)->minimize(
        planted_objective, planted_space(), criteria);

    OptimizerConfig wrapped =
        optimizer_config("portfolio:" + GetParam());
    wrapped.seed = 41;
    const OptimizeOutcome b = make_discrete_optimizer(wrapped)->minimize(
        planted_objective, planted_space(), criteria);

    expect_same_outcome(a, b);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PortfolioParity,
                         ::testing::Values("anneal", "random",
                                           "tempering"));

TEST(PortfolioSearch, MergedTraceIsArmConcatenationWithAttribution)
{
    StoppingCriteria criteria;
    criteria.max_evaluations = 160;
    OptimizerConfig config = optimizer_config("portfolio:anneal+random");
    config.seed = 13;
    const auto optimizer = make_discrete_optimizer(config);
    const OptimizeOutcome merged = optimizer->minimize(
        planted_objective, planted_space(), criteria);

    auto* portfolio = dynamic_cast<PortfolioSearch*>(optimizer.get());
    ASSERT_NE(portfolio, nullptr);
    const PortfolioSearch::Report& report = portfolio->last_report();
    ASSERT_EQ(report.arms.size(), 2u);
    EXPECT_EQ(report.arms[0].kind, "anneal");
    EXPECT_EQ(report.arms[1].kind, "random");

    // Concatenation in arm order, offsets and attribution consistent.
    std::vector<double> concat;
    std::size_t evaluations = 0;
    for (std::size_t i = 0; i < report.arms.size(); ++i) {
        EXPECT_EQ(report.arms[i].history_offset, concat.size());
        const auto& history = report.arms[i].outcome.history;
        concat.insert(concat.end(), history.begin(), history.end());
        evaluations += report.arms[i].outcome.evaluations;
    }
    EXPECT_EQ(merged.history, concat);
    EXPECT_EQ(merged.evaluations, evaluations);
    ASSERT_EQ(report.trace_arm.size(), merged.history.size());
    for (std::size_t j = 0; j < report.trace_arm.size(); ++j) {
        const std::size_t arm = report.trace_arm[j];
        ASSERT_LT(arm, report.arms.size());
        EXPECT_EQ(
            merged.history[j],
            report.arms[arm]
                .outcome.history[j - report.arms[arm].history_offset]);
    }

    // The winner holds the returned best.
    const PortfolioSearch::ArmReport& winner =
        report.arms[report.winner];
    EXPECT_EQ(merged.best_config, winner.outcome.best_config);
    EXPECT_DOUBLE_EQ(merged.best_value, winner.outcome.best_value);

    // Per-arm budget semantics: each arm runs its full solo
    // trajectory (160 evaluations each), neither dominates long
    // enough to be killed on the planted toy, and the exactly-spent
    // pool denies every restart.
    EXPECT_EQ(merged.history.size(), 2u * 160u);
    EXPECT_EQ(report.arms[0].outcome.history.size(), 160u);
    EXPECT_EQ(report.arms[1].outcome.history.size(), 160u);
}

TEST(PortfolioSearch, DeterministicAcrossRepeatsAndEvalPaths)
{
    StoppingCriteria criteria;
    criteria.max_evaluations = 150;
    OptimizerConfig config =
        optimizer_config("portfolio:anneal+bayes+random");
    config.seed = 7;
    config.bayes.warmup = 20;
    config.bayes.iterations = 40;

    const OptimizeOutcome a = make_discrete_optimizer(config)->minimize(
        planted_objective, planted_space(), criteria);
    const OptimizeOutcome b = make_discrete_optimizer(config)->minimize(
        planted_objective, planted_space(), criteria);
    expect_same_outcome(a, b);

    // The factory path (concurrent evaluation, one objective per arm)
    // must yield the identical trajectory to the serialized path, and
    // must mint exactly one objective per arm.
    std::atomic<int> minted{0};
    SearchContext context;
    context.objective_factory = [&minted]() -> DiscreteObjective {
        ++minted;
        return planted_objective;
    };
    const OptimizeOutcome c = make_discrete_optimizer(config)->minimize(
        planted_objective, planted_space(), criteria, context);
    expect_same_outcome(a, c);
    EXPECT_EQ(minted.load(), 3);
}

/** An arm that only ever re-evaluates the worst corner — guaranteed to
 *  be dominated once the grace window passes. */
class StuckOptimizer final : public DiscreteOptimizer
{
  public:
    std::string_view name() const override { return "stuck"; }

    OptimizeOutcome minimize(const DiscreteObjective& objective,
                             const DiscreteSpace& space,
                             const StoppingCriteria& criteria,
                             const SearchContext& context) override
    {
        validate_space(space);
        OutcomeRecorder recorder(criteria, criteria.max_evaluations,
                                 context.progress);
        std::vector<int> corner(space.num_parameters());
        for (std::size_t i = 0; i < corner.size(); ++i) {
            corner[i] = space.cardinalities[i] - 1;
        }
        corner[0] = 0; // {0,3,3}: value 4 on the planted objective
        try {
            while (true) {
                recorder.record(corner, objective(corner));
            }
        } catch (const OutcomeRecorder::EarlyStop&) {
        }
        return recorder.finish(StopReason::BudgetExhausted);
    }
};

TEST(PortfolioSearch, DominatedArmIsKilledAndBudgetFlowsToSurvivor)
{
    register_optimizer("stuck", [](const OptimizerConfig&) {
        return std::make_unique<StuckOptimizer>();
    });

    StoppingCriteria criteria;
    criteria.max_evaluations = 320;
    OptimizerConfig config = optimizer_config("portfolio:anneal+stuck");
    config.seed = 23;
    const auto optimizer = make_discrete_optimizer(config);
    const OptimizeOutcome merged = optimizer->minimize(
        planted_objective, planted_space(), criteria);

    auto* portfolio = dynamic_cast<PortfolioSearch*>(optimizer.get());
    ASSERT_NE(portfolio, nullptr);
    const PortfolioSearch::Report& report = portfolio->last_report();
    ASSERT_EQ(report.arms.size(), 2u);
    const PortfolioSearch::ArmReport& anneal = report.arms[0];
    const PortfolioSearch::ArmReport& stuck = report.arms[1];

    // The stuck arm is dominated from its first round and never
    // improves, so it is killed once both the grace window
    // (grace_rounds) and the staleness window (stale_rounds) have
    // passed — eight 32-eval rounds — and records at most one further
    // value while its recorder observes the token.
    EXPECT_TRUE(stuck.killed);
    EXPECT_EQ(stuck.outcome.stop_reason, StopReason::Cancelled);
    EXPECT_LE(stuck.outcome.history.size(), 8u * 32u + 1u);
    // Its unspent budget flowed to the survivor: anneal first runs
    // its own full 320-eval budget, then is restarted (warm-started
    // from its best) on the reclaimed evaluations — well past what a
    // solo run could spend.
    EXPECT_GE(anneal.restarts, 1u);
    EXPECT_GE(anneal.outcome.history.size(), 320u + 64u);
    EXPECT_EQ(merged.stop_reason, StopReason::BudgetExhausted);
    EXPECT_EQ(report.winner, 0u);
    EXPECT_EQ(merged.best_config, kPlanted);
}

TEST(PortfolioSearch, TargetReachedWinsAndStopsEveryArm)
{
    StoppingCriteria criteria;
    criteria.max_evaluations = 400;
    criteria.target_value = 0.0;
    OptimizerConfig config = optimizer_config("portfolio:anneal+random");
    config.seed = 3;
    const OptimizeOutcome merged = make_discrete_optimizer(config)
                                       ->minimize(planted_objective,
                                                  planted_space(),
                                                  criteria);
    EXPECT_EQ(merged.stop_reason, StopReason::TargetReached);
    EXPECT_EQ(merged.best_value, 0.0);
    EXPECT_EQ(merged.best_config, kPlanted);
    EXPECT_LT(merged.history.size(), 400u);
}

TEST(PortfolioSearch, ExternalCancelStopsTheRace)
{
    const auto cancel = std::make_shared<std::atomic<bool>>(false);
    std::atomic<int> calls{0};
    const auto objective = [&](const std::vector<int>& config) {
        if (++calls == 9) {
            cancel->store(true, std::memory_order_relaxed);
        }
        return planted_objective(config);
    };
    StoppingCriteria criteria;
    criteria.max_evaluations = 400;
    criteria.cancel = cancel;
    OptimizerConfig config = optimizer_config("portfolio:anneal+random");
    config.seed = 29;
    const OptimizeOutcome merged = make_discrete_optimizer(config)
                                       ->minimize(objective,
                                                  planted_space(),
                                                  criteria);
    EXPECT_EQ(merged.stop_reason, StopReason::Cancelled);
    // Every arm observes its token within one further evaluation.
    EXPECT_LE(merged.history.size(), 9u + 2u);
    ASSERT_FALSE(merged.best_config.empty());
    EXPECT_DOUBLE_EQ(planted_objective(merged.best_config),
                     merged.best_value);
}

// ---------------------------------------------------------------------
// Warm-start layer.
// ---------------------------------------------------------------------

TEST(WarmStart, SpecParsesEmitsAndRoundTrips)
{
    const RunSpec spec = RunSpec::parse(
        "problem=molecule:H2?bond=1.5 warm-start=1,3,0,2");
    EXPECT_EQ(spec.warm_start, (std::vector<int>{1, 3, 0, 2}));

    // Both serialized forms round-trip the field.
    EXPECT_EQ(RunSpec::parse(spec.to_string()), spec);
    EXPECT_EQ(RunSpec::from_json(spec.to_json()), spec);
    EXPECT_NE(spec.to_json().find("\"warm-start\":\"1,3,0,2\""),
              std::string::npos);

    // The underscore alias is accepted (canonical emission is
    // hyphenated, like every other multi-word field).
    RunSpec alias;
    alias.set("warm_start", "1,3,0,2");
    EXPECT_EQ(alias.warm_start, spec.warm_start);
}

TEST(WarmStart, StepsSeedThePipelineAfterHartreeFock)
{
    const problems::Problem problem =
        problems::make_problem("molecule:H2?bond=1.5");
    RunSpec spec;
    spec.problem = "molecule:H2?bond=1.5";
    spec.warm_start.assign(problem.ansatz.num_params(), 1);

    const PipelineConfig config = make_pipeline_config(spec, problem);
    ASSERT_GE(config.search.seed_steps.size(), 2u);
    EXPECT_EQ(config.search.seed_steps.back(), spec.warm_start);
    EXPECT_EQ(config.search.seed_steps.front(),
              problem.seed_steps.front());

    // Without hf_seed the warm start is the only seed.
    RunSpec bare = spec;
    bare.hf_seed = false;
    EXPECT_EQ(make_pipeline_config(bare, problem).search.seed_steps,
              std::vector<std::vector<int>>{spec.warm_start});

    // Wrong length is rejected with the counts in the message.
    RunSpec wrong = spec;
    wrong.warm_start.push_back(0);
    EXPECT_THROW(make_pipeline_config(wrong, problem),
                 std::invalid_argument);
}

TEST(WarmStart, RecordCarriesStepsAndWarmRunCannotBeWorse)
{
    // Bond lengths far out on the dissociation tail, where the best
    // Clifford assignment lands within chemical accuracy of exact
    // (closer in, CAFQA's discrete optimum is > 1.6 mHa away and
    // evals_to_accuracy is correctly absent).
    RunSpec cold = RunSpec::parse(
        "problem=molecule:H2?bond=2.8 warmup=25 iterations=25 seed=9");
    const RunRecord first = execute_run_spec(cold);
    ASSERT_TRUE(first.ok);
    ASSERT_FALSE(first.best_steps.empty());
    EXPECT_GE(first.evaluations, first.evaluations_to_best);
    ASSERT_TRUE(first.evals_to_accuracy.has_value());
    EXPECT_LE(*first.evals_to_accuracy, first.evaluations);
    EXPECT_NE(first.to_json().find("\"best_steps\":["),
              std::string::npos);
    EXPECT_NE(first.to_json().find("\"evaluations\":"),
              std::string::npos);

    // A neighboring bond length, warm-started from the first record:
    // the seed is evaluated before any exploration, so the warm run's
    // best can never be worse than the seed assignment's value there —
    // and on this smooth curve it reaches chemical accuracy
    // immediately.
    RunSpec warm = RunSpec::parse(
        "problem=molecule:H2?bond=3.0 warmup=25 iterations=25 seed=9");
    warm.warm_start = first.best_steps;
    const RunRecord second = execute_run_spec(warm);
    ASSERT_TRUE(second.ok);
    ASSERT_TRUE(second.evals_to_accuracy.has_value());

    RunSpec cold2 = warm;
    cold2.warm_start.clear();
    const RunRecord cold_second = execute_run_spec(cold2);
    ASSERT_TRUE(cold_second.ok);
    EXPECT_LE(second.best_objective,
              cold_second.best_objective + 1e-9);
    ASSERT_TRUE(cold_second.evals_to_accuracy.has_value());
    EXPECT_LE(*second.evals_to_accuracy,
              *cold_second.evals_to_accuracy);
}

TEST(WarmStart, BatchRunnerHookChainsRecords)
{
    const std::vector<RunSpec> specs = {
        RunSpec::parse("problem=molecule:H2?bond=1.5 warmup=20 "
                       "iterations=20 seed=5"),
        RunSpec::parse("problem=molecule:H2?bond=1.7 warmup=20 "
                       "iterations=20 seed=6"),
    };

    BatchOptions options;
    options.concurrency = 1;
    BatchRunner runner(options);
    std::vector<std::vector<int>> injected;
    runner.set_warm_start(
        [&injected](std::size_t index, const RunSpec&,
                    const std::vector<RunRecord>& records)
            -> std::vector<int> {
            if (index == 0 || !records[index - 1].ok) {
                return {};
            }
            injected.push_back(records[index - 1].best_steps);
            return records[index - 1].best_steps;
        });
    const std::vector<RunRecord> records = runner.run(specs);
    ASSERT_EQ(records.size(), 2u);
    ASSERT_TRUE(records[0].ok);
    ASSERT_TRUE(records[1].ok);
    ASSERT_EQ(injected.size(), 1u);
    EXPECT_EQ(injected[0], records[0].best_steps);
    // The reported spec stays as submitted (no warm_start leak).
    EXPECT_EQ(records[1].spec, specs[1]);

    // The chained run is bit-identical to a solo run with the same
    // warm start set explicitly.
    RunSpec solo = specs[1];
    solo.warm_start = records[0].best_steps;
    solo.threads = 1; // the runner's per-run pool remap
    const RunRecord reference = execute_run_spec(solo);
    EXPECT_EQ(records[1].best_objective, reference.best_objective);
    EXPECT_EQ(records[1].best_steps, reference.best_steps);
    EXPECT_EQ(records[1].evaluations, reference.evaluations);
}

TEST(PortfolioSearch, RunsEndToEndThroughRunSpec)
{
    const RunSpec spec = RunSpec::parse(
        "problem=molecule:H2?bond=1.5 search=portfolio:anneal+random "
        "budget=200 seed=12");
    const RunRecord record = execute_run_spec(spec);
    ASSERT_TRUE(record.ok) << record.error;
    EXPECT_EQ(record.stop_reason, "budget");
    // budget= is per arm: the two-arm portfolio may spend up to twice
    // the budget across its arms.
    EXPECT_GE(record.evaluations, 200u);
    EXPECT_LE(record.evaluations, 2u * 200u + 2u);
    // Round-trips the wire format (the job server submits flat JSON
    // RunSpecs, so surviving from_json(to_json(...)) is the wire
    // contract).
    EXPECT_EQ(RunSpec::from_json(spec.to_json()), spec);
}

} // namespace
} // namespace cafqa
