# Pins bench_check's documented exit-code contract (see
# bench/bench_check.cpp):
#   0 clean   1 regression   2 bad arguments   3 missing input
# Run via ctest:
#   cmake -DBENCH_CHECK=<exe> -DWORK_DIR=<dir> -P bench_check_exit_codes.cmake

if(NOT BENCH_CHECK OR NOT WORK_DIR)
  message(FATAL_ERROR "BENCH_CHECK and WORK_DIR are required")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
file(WRITE ${WORK_DIR}/baseline.json
     "{\"pack_us\": 10.0, \"throughput_jobs\": 100.0}\n")
file(WRITE ${WORK_DIR}/same.json
     "{\"pack_us\": 11.0, \"throughput_jobs\": 95.0}\n")
file(WRITE ${WORK_DIR}/slow.json
     "{\"pack_us\": 500.0, \"throughput_jobs\": 95.0}\n")

function(expect_exit code)
  execute_process(COMMAND ${BENCH_CHECK} ${ARGN}
                  RESULT_VARIABLE result
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT result EQUAL ${code})
    message(FATAL_ERROR
            "bench_check ${ARGN}: expected exit ${code}, got "
            "'${result}'\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# 0: within tolerance.
expect_exit(0 ${WORK_DIR}/same.json --check ${WORK_DIR}/baseline.json)
# 1: timing regression past the band.
expect_exit(1 ${WORK_DIR}/slow.json --check ${WORK_DIR}/baseline.json)
# 2: usage errors - no baseline, unknown flag, bad tolerance.
expect_exit(2 ${WORK_DIR}/same.json)
expect_exit(2 ${WORK_DIR}/same.json --check ${WORK_DIR}/baseline.json
            --bogus)
expect_exit(2 ${WORK_DIR}/same.json --check ${WORK_DIR}/baseline.json
            --tolerance 0.5)
# 3: missing input file (either side).
expect_exit(3 ${WORK_DIR}/absent.json --check ${WORK_DIR}/baseline.json)
expect_exit(3 ${WORK_DIR}/same.json --check ${WORK_DIR}/absent.json)

message(STATUS "bench_check exit-code contract holds")
