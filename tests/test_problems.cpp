// Problem-registry tests: key parsing, registry enumeration
// round-trip, the adapters over the legacy molecule/MaxCut factories,
// and the TFIM/XXZ families against independent exact references.

#include <gtest/gtest.h>

#include <cmath>

#include "core/clifford_ansatz.hpp"
#include "core/pipeline.hpp"
#include "problems/molecule_factory.hpp"
#include "problems/problem.hpp"
#include "problems/spin_chains.hpp"
#include "statevector/lanczos.hpp"

namespace cafqa {
namespace {

using problems::make_problem;
using problems::Problem;
using problems::ProblemKey;

TEST(ProblemKey, ParseAndRoundTrip)
{
    const ProblemKey key =
        ProblemKey::parse("maxcut:er-256?p=0.03&seed=11");
    EXPECT_EQ(key.family, "maxcut");
    EXPECT_EQ(key.instance, "er-256");
    ASSERT_EQ(key.params.size(), 2u);
    EXPECT_EQ(key.params[0].first, "p");
    EXPECT_EQ(key.params[0].second, "0.03");
    EXPECT_EQ(*key.find("seed"), "11");
    EXPECT_FALSE(key.find("missing").has_value());
    EXPECT_EQ(key.to_string(), "maxcut:er-256?p=0.03&seed=11");

    const ProblemKey plain = ProblemKey::parse("tfim:chain-8");
    EXPECT_TRUE(plain.params.empty());
    EXPECT_EQ(plain.to_string(), "tfim:chain-8");
}

TEST(ProblemKey, RejectsMalformedKeys)
{
    EXPECT_THROW(ProblemKey::parse("no-colon"), std::invalid_argument);
    EXPECT_THROW(ProblemKey::parse(":instance"), std::invalid_argument);
    EXPECT_THROW(ProblemKey::parse("family:"), std::invalid_argument);
    EXPECT_THROW(ProblemKey::parse("f:i?"), std::invalid_argument);
    EXPECT_THROW(ProblemKey::parse("f:i?novalue"), std::invalid_argument);
    EXPECT_THROW(ProblemKey::parse("f:i?=v"), std::invalid_argument);
    EXPECT_THROW(ProblemKey::parse("f:i?a=1&a=2"), std::invalid_argument);
}

TEST(ProblemRegistry, BuiltInFamiliesAreRegistered)
{
    const auto families = problems::registered_problem_families();
    for (const char* family : {"molecule", "maxcut", "tfim", "xxz"}) {
        EXPECT_TRUE(problems::problem_family_registered(family));
        EXPECT_NE(std::find(families.begin(), families.end(), family),
                  families.end())
            << family;
    }
}

TEST(ProblemRegistry, CatalogSampleKeysResolveAndRoundTrip)
{
    // Every advertised sample key must resolve, and the resolved
    // problem's canonical key must resolve to the identical problem.
    for (const auto& info : problems::problem_family_catalog()) {
        SCOPED_TRACE(info.family);
        ASSERT_FALSE(info.sample_key.empty());
        const Problem first = make_problem(info.sample_key);
        EXPECT_EQ(first.family, info.family);
        const Problem second = make_problem(first.key);
        EXPECT_EQ(second.key, first.key);
        EXPECT_EQ(second.num_qubits, first.num_qubits);
        EXPECT_EQ(second.hamiltonian().num_terms(),
                  first.hamiltonian().num_terms());
        EXPECT_EQ(second.ansatz.num_params(), first.ansatz.num_params());
    }
}

TEST(ProblemRegistry, CanonicalKeysRoundTripExactly)
{
    for (const char* key :
         {"molecule:H2?bond=1.1", "maxcut:ring-6",
          "maxcut:er-8?p=0.4&seed=9", "maxcut:ring-6?ansatz=qaoa&layers=2",
          "tfim:chain-5?h=0.7", "tfim:ring-4?j=0.5&h=2",
          "xxz:chain-4?delta=0.5", "xxz:ring-6?j=2&layers=2"}) {
        SCOPED_TRACE(key);
        const Problem first = make_problem(key);
        const Problem second = make_problem(first.key);
        EXPECT_EQ(second.key, first.key);
        ASSERT_EQ(second.hamiltonian().num_terms(),
                  first.hamiltonian().num_terms());
        for (std::size_t t = 0; t < first.hamiltonian().num_terms();
             ++t) {
            EXPECT_EQ(second.hamiltonian().terms()[t].coefficient,
                      first.hamiltonian().terms()[t].coefficient);
            EXPECT_TRUE(second.hamiltonian().terms()[t].string ==
                        first.hamiltonian().terms()[t].string);
        }
        EXPECT_EQ(second.ansatz.num_params(), first.ansatz.num_params());
        EXPECT_EQ(second.seed_steps, first.seed_steps);
    }
}

TEST(ProblemRegistry, MoleculeAdapterMatchesLegacyFactory)
{
    const Problem problem = make_problem("molecule:H2?bond=2.2");
    const auto system = problems::make_molecular_system("H2", 2.2);

    EXPECT_EQ(problem.name, "H2");
    EXPECT_EQ(problem.num_qubits, system.num_qubits);
    EXPECT_EQ(problem.hamiltonian().num_terms(),
              system.hamiltonian.num_terms());
    ASSERT_TRUE(problem.reference_energy.has_value());
    EXPECT_DOUBLE_EQ(*problem.reference_energy, system.hf_energy);
    EXPECT_EQ(problem.reference_name, "HF");
    // The objective matches make_objective: Hamiltonian + 2 penalties.
    EXPECT_EQ(problem.objective.penalties.size(),
              problems::make_objective(system).penalties.size());
    // The seed steps are the HF determinant's Clifford point.
    ASSERT_EQ(problem.seed_steps.size(), 1u);
    EXPECT_EQ(problem.seed_steps.front(),
              efficient_su2_bitstring_steps(system.num_qubits,
                                            system.hf_bits));
    // Case-insensitive lookup canonicalizes.
    EXPECT_EQ(make_problem("molecule:h2?bond=2.2").key, problem.key);

    ASSERT_TRUE(problem.exact_energy().has_value());
    EXPECT_NEAR(*problem.exact_energy(),
                lanczos_ground_state(system.hamiltonian).energy, 1e-9);
}

TEST(ProblemRegistry, MoleculeDefaultBondIsEquilibrium)
{
    const auto info = problems::molecule_info("H2");
    const Problem problem = make_problem("molecule:H2");
    EXPECT_NE(problem.key.find("bond="), std::string::npos);
    EXPECT_DOUBLE_EQ(problem.metric("bond_angstrom").value(),
                     info.equilibrium_bond_length);
}

TEST(ProblemRegistry, DefaultMoleculePipelineMatchesHandWiredPipeline)
{
    // The acceptance bar: a registry-driven run is bit-identical to
    // the hand-wired PR-4 path.
    const Problem problem = make_problem("molecule:H2?bond=2.2");
    PipelineConfig from_registry;
    from_registry.ansatz = problem.ansatz;
    from_registry.objective = problem.objective;
    from_registry.search = {.warmup = 40, .iterations = 40, .seed = 7};
    from_registry.search.seed_steps = problem.seed_steps;

    const auto system = problems::make_molecular_system("H2", 2.2);
    PipelineConfig hand_wired;
    hand_wired.ansatz = system.ansatz;
    hand_wired.objective = problems::make_objective(system);
    hand_wired.search = {.warmup = 40, .iterations = 40, .seed = 7};
    hand_wired.search.seed_steps.push_back(efficient_su2_bitstring_steps(
        system.num_qubits, system.hf_bits));

    CafqaPipeline a(std::move(from_registry));
    CafqaPipeline b(std::move(hand_wired));
    const CafqaResult& ra = a.run_clifford_search();
    const CafqaResult& rb = b.run_clifford_search();
    EXPECT_EQ(ra.best_steps, rb.best_steps);
    EXPECT_EQ(ra.best_energy, rb.best_energy);
    EXPECT_EQ(ra.history, rb.history);
}

TEST(ProblemRegistry, MaxCutAdapterExactEnergyIsBruteForceOptimum)
{
    const Problem even_ring = make_problem("maxcut:ring-6");
    ASSERT_TRUE(even_ring.exact_energy().has_value());
    EXPECT_DOUBLE_EQ(*even_ring.exact_energy(), -6.0);

    const Problem odd_ring = make_problem("maxcut:ring-5");
    EXPECT_DOUBLE_EQ(*odd_ring.exact_energy(), -4.0);

    EXPECT_EQ(even_ring.metric("vertices"), 6.0);
    EXPECT_EQ(even_ring.metric("edges"), 6.0);

    // QAOA ansatz: 2 shared parameters per layer.
    const Problem qaoa =
        make_problem("maxcut:ring-6?ansatz=qaoa&layers=3");
    EXPECT_EQ(qaoa.ansatz.num_params(), 6u);
}

TEST(SpinChains, TfimHamiltonianStructure)
{
    const auto open = problems::make_tfim_chain(5, 1.0, 0.8, false);
    EXPECT_EQ(open.hamiltonian.num_terms(), 4u + 5u);
    const auto ring = problems::make_tfim_chain(5, 1.0, 0.8, true);
    EXPECT_EQ(ring.hamiltonian.num_terms(), 5u + 5u);
}

TEST(SpinChains, TfimExactEnergyMatchesIndependentDiagonalization)
{
    // Independently hand-built Hamiltonian for a 4-site open chain,
    // dense-diagonalized — the registry's lazy exact energy (Lanczos)
    // must agree.
    const double j = 1.0;
    const double h = 1.3;
    PauliSum reference(4);
    for (const char* zz : {"ZZII", "IZZI", "IIZZ"}) {
        reference.add_term(-j, PauliString::from_label(zz));
    }
    for (const char* x : {"XIII", "IXII", "IIXI", "IIIX"}) {
        reference.add_term(-h, PauliString::from_label(x));
    }
    const double expected = dense_spectrum(reference).front();

    const Problem problem = make_problem("tfim:chain-4?h=1.3");
    ASSERT_TRUE(problem.exact_energy().has_value());
    EXPECT_NEAR(*problem.exact_energy(), expected, 1e-8);
    EXPECT_NEAR(lanczos_ground_state(problem.hamiltonian()).energy,
                expected, 1e-8);
}

TEST(SpinChains, TfimClassicalLimitIsProductState)
{
    // At h = 0 the ground state is the ferromagnet |00...0>, which is
    // the problem's reference product state: reference == exact.
    const Problem problem = make_problem("tfim:chain-4?h=0");
    ASSERT_TRUE(problem.reference_energy.has_value());
    ASSERT_TRUE(problem.exact_energy().has_value());
    EXPECT_NEAR(*problem.reference_energy, *problem.exact_energy(),
                1e-9);
    EXPECT_NEAR(*problem.reference_energy, -3.0, 1e-12);
}

TEST(SpinChains, XxzSingletGroundStateOnTwoSites)
{
    // Two-site Heisenberg: XX + YY + ZZ has the singlet at -3 (triplet
    // at +1) — an analytic anchor independent of any solver.
    const Problem problem = make_problem("xxz:chain-2?delta=1");
    ASSERT_TRUE(problem.exact_energy().has_value());
    EXPECT_NEAR(*problem.exact_energy(), -3.0, 1e-9);
}

TEST(SpinChains, XxzExactEnergyMatchesIndependentDiagonalization)
{
    const double delta = 0.5;
    PauliSum reference(3);
    for (const char* xx : {"XXI", "IXX"}) {
        reference.add_term(1.0, PauliString::from_label(xx));
    }
    for (const char* yy : {"YYI", "IYY"}) {
        reference.add_term(1.0, PauliString::from_label(yy));
    }
    for (const char* zz : {"ZZI", "IZZ"}) {
        reference.add_term(delta, PauliString::from_label(zz));
    }
    const double expected = dense_spectrum(reference).front();

    const Problem problem = make_problem("xxz:chain-3?delta=0.5");
    ASSERT_TRUE(problem.exact_energy().has_value());
    EXPECT_NEAR(*problem.exact_energy(), expected, 1e-8);
}

TEST(SpinChains, NeelReferenceEnergy)
{
    // Open 4-site XXZ at delta = 1: the Neel product state scores -1
    // per bond from the ZZ terms and 0 from XX/YY.
    const Problem problem = make_problem("xxz:chain-4");
    ASSERT_TRUE(problem.reference_energy.has_value());
    EXPECT_NEAR(*problem.reference_energy, -3.0, 1e-12);
    EXPECT_EQ(problem.reference_name, "product-state");
}

TEST(SpinChains, CliffordSearchReachesStabilizerOptimum)
{
    // The TFIM paramagnet limit (j = 0): the exact ground state is
    // |+>^n, a stabilizer state, so exhaustive enumeration of the
    // Clifford space must hit the exact energy.
    const Problem problem = make_problem("tfim:chain-2?j=0&h=1");
    const CafqaResult result =
        exhaustive_clifford_search(problem.ansatz, problem.objective);
    EXPECT_NEAR(result.best_energy, -2.0, 1e-9);
    ASSERT_TRUE(problem.exact_energy().has_value());
    EXPECT_NEAR(*problem.exact_energy(), -2.0, 1e-9);
}

TEST(ProblemRegistry, SpinChainSeedStepsPrepareTheProductState)
{
    // The prior-injected steps must reproduce the reference product
    // state's energy when evaluated on the ansatz.
    for (const char* key : {"tfim:chain-4?h=0.7", "xxz:chain-5"}) {
        SCOPED_TRACE(key);
        const Problem problem = make_problem(key);
        ASSERT_EQ(problem.seed_steps.size(), 1u);
        BackendConfig backend_config;
        backend_config.kind = "clifford";
        backend_config.ansatz = problem.ansatz;
        const auto backend = make_discrete_backend(backend_config);
        backend->prepare(problem.seed_steps.front());
        EXPECT_NEAR(backend->expectation(problem.hamiltonian()),
                    *problem.reference_energy, 1e-9);
    }
}

TEST(ProblemRegistry, RuntimeRegistrationExtendsTheRegistry)
{
    problems::register_problem_family(
        "toy",
        [](const ProblemKey& key) {
            Problem problem;
            problem.family = "toy";
            problem.name = key.instance;
            problem.key = "toy:" + key.instance;
            problem.num_qubits = 1;
            problem.objective.hamiltonian =
                PauliSum::from_terms(1, {{1.0, "Z"}});
            problem.ansatz = Circuit(1);
            problem.ansatz.ry_param(0);
            return problem;
        },
        "single-qubit toy", "toy:z");
    EXPECT_TRUE(problems::problem_family_registered("toy"));
    const Problem toy = make_problem("toy:z");
    EXPECT_EQ(toy.num_qubits, 1u);
    EXPECT_FALSE(toy.exact_energy().has_value());
}

} // namespace
} // namespace cafqa
