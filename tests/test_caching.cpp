// Tests for the memoizing evaluation cache (core/caching_backend.hpp):
// registry composition ("cached:<kind>" / BackendConfig::cache), exact
// cached==uncached parity through the pipeline, LRU eviction and stats
// accounting, determinism across thread counts (clones share one
// cache), correctness under concurrent access, and the
// unique-evaluation budget accounting in OutcomeRecorder.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>

#include "common/text.hpp"
#include "common/thread_pool.hpp"
#include "core/batch_runner.hpp"
#include "core/caching_backend.hpp"
#include "core/evaluator.hpp"
#include "core/pipeline.hpp"
#include "problems/molecule_factory.hpp"

namespace cafqa {
namespace {

Circuit
tiny_ansatz()
{
    Circuit ansatz(2);
    ansatz.ry_param(0);
    ansatz.ry_param(1);
    ansatz.cx(0, 1);
    return ansatz;
}

CacheOptions
cache_on(std::size_t capacity = std::size_t{1} << 16,
         std::size_t shards = 8)
{
    CacheOptions options;
    options.enabled = true;
    options.capacity = capacity;
    options.shards = shards;
    return options;
}

PipelineConfig
h2_config(std::uint64_t seed, const std::string& search_kind = "bayes")
{
    const auto system = problems::make_molecular_system("H2", 2.2);
    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = problems::make_objective(system);
    config.search.warmup = 50;
    config.search.iterations = 80;
    config.search.seed = seed;
    config.search_optimizer = optimizer_config(search_kind);
    return config;
}

TEST(CachingBackend, RegistryComposesByPrefixAndConfigBlock)
{
    BackendConfig config;
    config.kind = "cached:clifford";
    config.ansatz = tiny_ansatz();
    const auto by_prefix = make_discrete_backend(config);
    EXPECT_EQ(by_prefix->kind(), "cached:clifford");
    EXPECT_TRUE(by_prefix->discrete());
    EXPECT_EQ(by_prefix->num_params(), 2u);

    BackendConfig block;
    block.kind = "statevector";
    block.ansatz = tiny_ansatz();
    block.cache.enabled = true;
    const auto by_block = make_continuous_backend(block);
    EXPECT_EQ(by_block->kind(), "cached:statevector");
    EXPECT_FALSE(by_block->discrete());

    EXPECT_TRUE(backend_registered("cached:density"));
    EXPECT_FALSE(backend_registered("cached:no-such-backend"));
    EXPECT_FALSE(backend_registered("cached:"));
}

TEST(CachingBackend, HitsSkipPreparationAndLruEvictsOldest)
{
    const PauliSum op = PauliSum::from_terms(2, {{1.0, "ZZ"}});
    auto wrapper = CachingDiscreteBackend(
        std::make_unique<CliffordEvaluator>(tiny_ansatz()),
        cache_on(/*capacity=*/2, /*shards=*/1));

    const std::vector<int> a{0, 0};
    const std::vector<int> b{1, 0};
    const std::vector<int> c{2, 0};

    wrapper.prepare(a);
    const double value_a = wrapper.expectation(op); // miss, prepares
    EXPECT_DOUBLE_EQ(wrapper.expectation(op), value_a); // hit
    wrapper.prepare(a);
    EXPECT_DOUBLE_EQ(wrapper.expectation(op), value_a); // hit, no prep

    CacheStats stats = wrapper.cache_stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.preparations, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_GT(stats.bytes, 0u);
    EXPECT_NEAR(stats.hit_rate(), 2.0 / 3.0, 1e-12);

    wrapper.prepare(b);
    wrapper.expectation(op); // miss: {b, a} resident
    wrapper.prepare(a);
    wrapper.expectation(op); // hit refreshes a: {a, b}
    wrapper.prepare(c);
    wrapper.expectation(op); // miss at capacity: evicts b -> {c, a}

    stats = wrapper.cache_stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);

    wrapper.prepare(a);
    wrapper.expectation(op); // still resident (was refreshed)
    EXPECT_EQ(wrapper.cache_stats().hits, stats.hits + 1);

    wrapper.prepare(b);
    wrapper.expectation(op); // evicted above: a fresh miss + preparation
    const CacheStats final_stats = wrapper.cache_stats();
    EXPECT_EQ(final_stats.misses, stats.misses + 1);
    EXPECT_EQ(final_stats.evictions, 2u);
    // Re-evaluations of evicted points recompute the same values.
    EXPECT_DOUBLE_EQ(wrapper.expectation(op), wrapper.expectation(op));
}

TEST(CachingBackend, CachedPipelineMatchesUncachedExactlyOnH2)
{
    CafqaPipeline uncached(h2_config(19));
    const CafqaResult& reference = uncached.run_clifford_search();

    PipelineConfig config = h2_config(19);
    config.cache = cache_on();
    CafqaPipeline cached(std::move(config));
    const CafqaResult& result = cached.run_clifford_search();

    EXPECT_EQ(result.best_steps, reference.best_steps);
    EXPECT_DOUBLE_EQ(result.best_objective, reference.best_objective);
    EXPECT_DOUBLE_EQ(result.best_energy, reference.best_energy);
    EXPECT_EQ(result.history, reference.history);
}

TEST(CachingBackend, CachedPipelineMatchesUncachedExactlyOnLiH)
{
    const auto system = problems::make_molecular_system("LiH", 2.4);
    auto make_config = [&](bool with_cache) {
        PipelineConfig config;
        config.ansatz = system.ansatz;
        config.objective = problems::make_objective(system);
        config.search.warmup = 40;
        config.search.iterations = 40;
        config.search.seed = 5;
        if (with_cache) {
            config.cache = cache_on();
        }
        return config;
    };

    CafqaPipeline uncached(make_config(false));
    CafqaPipeline cached(make_config(true));
    const CafqaResult& reference = uncached.run_clifford_search();
    const CafqaResult& result = cached.run_clifford_search();

    EXPECT_EQ(result.best_steps, reference.best_steps);
    EXPECT_DOUBLE_EQ(result.best_energy, reference.best_energy);
    EXPECT_EQ(result.history, reference.history);
}

TEST(CachingBackend, AnnealingRevisitsHitTheCacheAndStatsReachObserver)
{
    CafqaPipeline uncached(h2_config(7, "anneal"));
    const CafqaResult& reference = uncached.run_clifford_search();

    PipelineConfig config = h2_config(7, "anneal");
    config.cache = cache_on();
    CafqaPipeline cached(std::move(config));

    std::optional<CacheStats> observed;
    cached.set_observer([&](const PipelineEvent& event) {
        if (event.event == PipelineEvent::Kind::StageEnd &&
            event.cache != nullptr) {
            observed = *event.cache;
        }
    });
    const CafqaResult& result = cached.run_clifford_search();

    // Pure memoization: the trajectory is bit-identical...
    EXPECT_EQ(result.history, reference.history);
    EXPECT_DOUBLE_EQ(result.best_energy, reference.best_energy);

    // ...while annealing's re-visits were served from the cache.
    ASSERT_TRUE(observed.has_value());
    EXPECT_GT(observed->hits, 0u);
    EXPECT_GT(observed->hit_rate(), 0.0);
    // Preparations < recorded evaluations: re-visited points skipped
    // state preparation entirely.
    EXPECT_LT(observed->preparations, result.history.size());
}

TEST(CachingBackend, NoCacheStatsOnObserverWhenDisabled)
{
    CafqaPipeline pipeline(h2_config(3));
    bool saw_stage_end = false;
    pipeline.set_observer([&](const PipelineEvent& event) {
        if (event.event == PipelineEvent::Kind::StageEnd) {
            saw_stage_end = true;
            EXPECT_EQ(event.cache, nullptr);
        }
    });
    pipeline.run_clifford_search();
    EXPECT_TRUE(saw_stage_end);
}

TEST(CachingBackend, DeterministicAcrossThreadCountsWithSharedCache)
{
    std::vector<CafqaResult> results;
    for (const std::size_t threads : {1u, 4u}) {
        PipelineConfig config = h2_config(11);
        config.cache = cache_on();
        config.threads = threads;
        CafqaPipeline pipeline(std::move(config));
        results.push_back(pipeline.run_clifford_search());
    }
    EXPECT_EQ(results[0].best_steps, results[1].best_steps);
    EXPECT_EQ(results[0].history, results[1].history);
    EXPECT_DOUBLE_EQ(results[0].best_energy, results[1].best_energy);
}

TEST(CachingBackend, CachedVqaTuneMatchesUncached)
{
    auto tune_config = [](bool with_cache) {
        PipelineConfig config = h2_config(13);
        config.search.warmup = 20;
        config.search.iterations = 20;
        config.tuner.iterations = 30;
        if (with_cache) {
            config.cache = cache_on();
        }
        return config;
    };

    CafqaPipeline uncached(tune_config(false));
    CafqaPipeline cached(tune_config(true));
    const VqaTuneResult& reference = uncached.run_vqa_tune();
    const VqaTuneResult& result = cached.run_vqa_tune();

    EXPECT_EQ(result.trace, reference.trace);
    EXPECT_DOUBLE_EQ(result.final_value, reference.final_value);
    EXPECT_EQ(result.final_params, reference.final_params);
}

TEST(CachingBackend, ConcurrentClonesShareOneCacheCorrectly)
{
    // Clones produced by clone() share the cache; hammer it from a
    // thread pool with deliberately repeated candidates and a small
    // capacity (constant eviction churn), then check every value
    // against an uncached reference. Run under ASan/UBSan in CI.
    const auto system = problems::make_molecular_system("H2", 1.5);
    const VqaObjective objective = problems::make_objective(system);
    const std::vector<PauliSum> observables = objective.gather_observables();

    const CachingDiscreteBackend prototype(
        std::make_unique<CliffordEvaluator>(system.ansatz),
        cache_on(/*capacity=*/16, /*shards=*/4));

    Rng rng(99);
    std::vector<std::vector<int>> distinct(40);
    for (auto& steps : distinct) {
        steps.resize(system.ansatz.num_params());
        for (auto& s : steps) {
            s = static_cast<int>(rng.uniform_int(0, 3));
        }
    }
    // Each point appears twice back-to-back (so re-visits land inside
    // the tiny LRU window despite the eviction churn), for 4 rounds.
    std::vector<std::vector<int>> candidates;
    for (int round = 0; round < 4; ++round) {
        for (const auto& steps : distinct) {
            candidates.push_back(steps);
            candidates.push_back(steps);
        }
    }

    ThreadPool pool(4);
    std::vector<double> values(candidates.size());
    std::vector<std::unique_ptr<DiscreteBackend>> clones(pool.size());
    pool.parallel_for(candidates.size(),
                      [&](std::size_t worker, std::size_t index) {
                          auto& backend = clones[worker];
                          if (!backend) {
                              backend = prototype.clone_discrete();
                          }
                          backend->prepare(candidates[index]);
                          values[index] = objective.combine(
                              backend->expectations(observables));
                      });

    CliffordEvaluator reference(system.ansatz);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        reference.prepare(candidates[i]);
        EXPECT_DOUBLE_EQ(values[i], objective.evaluate(reference))
            << "candidate " << i;
    }

    const CacheStats stats = prototype.cache_stats();
    EXPECT_EQ(stats.hits + stats.misses,
              candidates.size() * observables.size());
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.entries, 16u + 4u); // capacity, rounded up per shard
}

TEST(CachingBackend, ContinuousQuantizationSharesEntriesWithinResolution)
{
    CacheOptions options = cache_on();
    options.resolution = 1e-6;
    auto wrapper = CachingContinuousBackend(
        std::make_unique<IdealEvaluator>(tiny_ansatz()), options);
    const PauliSum op = PauliSum::from_terms(2, {{1.0, "ZZ"}});

    wrapper.prepare({0.5, 1.0});
    const double first = wrapper.expectation(op);
    // Within one quantization step: served from the cache.
    wrapper.prepare({0.5 + 1e-9, 1.0});
    EXPECT_DOUBLE_EQ(wrapper.expectation(op), first);
    EXPECT_EQ(wrapper.cache_stats().hits, 1u);
    // Beyond the step: a genuine re-evaluation.
    wrapper.prepare({0.5 + 1e-3, 1.0});
    wrapper.expectation(op);
    EXPECT_EQ(wrapper.cache_stats().misses, 2u);
    EXPECT_EQ(wrapper.cache_stats().preparations, 2u);
}

TEST(OutcomeRecorder, UniqueEvaluationBudgetIgnoresRepeats)
{
    const std::vector<int> a{0, 0};
    const std::vector<int> b{1, 0};
    const std::vector<int> c{2, 0};

    // Plain accounting: the third record exhausts a budget of 3.
    {
        StoppingCriteria criteria;
        criteria.max_evaluations = 3;
        OutcomeRecorder recorder(criteria, criteria.max_evaluations, {});
        recorder.record(a, 1.0);
        recorder.record(b, 2.0);
        EXPECT_THROW(recorder.record(a, 1.0),
                     OutcomeRecorder::EarlyStop);
    }

    // Unique accounting: repeats of recorded points are free; only the
    // third *distinct* point exhausts the budget.
    StoppingCriteria criteria;
    criteria.max_evaluations = 3;
    criteria.unique_evaluations = true;
    OutcomeRecorder recorder(criteria, criteria.max_evaluations, {});
    recorder.record(a, 1.0);
    recorder.record(b, 2.0);
    recorder.record(a, 1.0);
    recorder.record(b, 2.0);
    EXPECT_EQ(recorder.remaining_budget(), 1u);
    EXPECT_THROW(recorder.record(c, 3.0), OutcomeRecorder::EarlyStop);

    const OptimizeOutcome outcome =
        recorder.finish(StopReason::BudgetExhausted);
    EXPECT_EQ(outcome.evaluations, 5u);
    EXPECT_EQ(outcome.unique_evaluations, 3u);
    EXPECT_EQ(outcome.history.size(), 5u);
    EXPECT_EQ(outcome.stop_reason, StopReason::BudgetExhausted);
}

TEST(OutcomeRecorder, UniqueTallyIsOptIn)
{
    // With unique accounting on (and no budget cap) the distinct-point
    // tally is reported...
    StoppingCriteria criteria;
    criteria.unique_evaluations = true;
    OutcomeRecorder tracked(criteria, 0, {});
    tracked.record(std::vector<int>{0}, 1.0);
    tracked.record(std::vector<int>{1}, 2.0);
    tracked.record(std::vector<int>{0}, 1.0);
    const OptimizeOutcome with_flag = tracked.finish(StopReason::Stalled);
    EXPECT_EQ(with_flag.evaluations, 3u);
    EXPECT_EQ(with_flag.unique_evaluations, 2u);

    // ...and with it off (the default), the bookkeeping is skipped
    // entirely — the field stays 0 rather than paying a per-evaluation
    // hash-set insert for a disabled feature.
    OutcomeRecorder untracked(StoppingCriteria{}, 0, {});
    untracked.record(std::vector<int>{0}, 1.0);
    untracked.record(std::vector<int>{1}, 2.0);
    const OptimizeOutcome without_flag =
        untracked.finish(StopReason::Stalled);
    EXPECT_EQ(without_flag.evaluations, 2u);
    EXPECT_EQ(without_flag.unique_evaluations, 0u);
}

TEST(OutcomeRecorder, ContinuousUniqueIdentityMatchesCacheQuantization)
{
    // With unique_resolution set (as the pipeline does from
    // CacheOptions::resolution), points within one quantization step
    // count as the same unique evaluation — exactly the points the
    // cache serves as hits.
    StoppingCriteria criteria;
    criteria.unique_evaluations = true;
    criteria.unique_resolution = 1e-6;
    OutcomeRecorder recorder(criteria, 0, {});
    recorder.record(std::vector<double>{0.5}, 1.0);
    recorder.record(std::vector<double>{0.5 + 1e-9}, 1.0); // cache hit
    recorder.record(std::vector<double>{0.5 + 1e-3}, 2.0); // cache miss
    const OptimizeOutcome outcome =
        recorder.finish(StopReason::BudgetExhausted);
    EXPECT_EQ(outcome.evaluations, 3u);
    EXPECT_EQ(outcome.unique_evaluations, 2u);
}

TEST(RandomSearch, UniqueBudgetKeepsDrawingPastDuplicates)
{
    // 4-config space, budget 4 with unique accounting: the run must
    // evaluate every configuration exactly once (duplicate draws are
    // dropped, not re-dispatched) and end once the distinct-point
    // budget — or the space — is exhausted.
    DiscreteSpace space;
    space.cardinalities = {2, 2};
    std::map<std::vector<int>, int> counts;
    auto objective = [&](const std::vector<int>& config) {
        ++counts[config];
        return static_cast<double>(config[0] * 2 + config[1]);
    };
    StoppingCriteria criteria;
    criteria.max_evaluations = 4;
    criteria.unique_evaluations = true;
    RandomSearchOptions options;
    options.samples = 0;
    options.seed = 33;
    RandomSearchOptimizer optimizer(options);
    const OptimizeOutcome outcome =
        optimizer.minimize(objective, space, criteria);

    EXPECT_EQ(counts.size(), 4u);
    for (const auto& [config, count] : counts) {
        EXPECT_EQ(count, 1) << "config re-evaluated";
    }
    EXPECT_EQ(outcome.unique_evaluations, 4u);
    EXPECT_EQ(outcome.history.size(), 4u);
    EXPECT_EQ(outcome.best_value, 0.0);
}

TEST(CacheStats, JsonRoundTripsEveryCounter)
{
    CacheStats stats;
    stats.hits = 41;
    stats.misses = 7;
    stats.evictions = 3;
    stats.entries = 4;
    stats.bytes = 2048;
    stats.preparations = 7;

    const std::string json = stats.to_json();
    const std::vector<JsonField> fields = parse_flat_json_object(json);
    const auto value = [&](const std::string& name) {
        const JsonField* field = find_json_field(fields, name);
        EXPECT_NE(field, nullptr) << name << " missing from " << json;
        return field != nullptr ? field->value : std::string{};
    };
    EXPECT_EQ(value("hits"), "41");
    EXPECT_EQ(value("misses"), "7");
    EXPECT_EQ(value("evictions"), "3");
    EXPECT_EQ(value("entries"), "4");
    EXPECT_EQ(value("bytes"), "2048");
    EXPECT_EQ(value("preparations"), "7");
    EXPECT_EQ(value("hit_rate"), format_real(stats.hit_rate()));

    // Zero-lookup stats serialize a well-defined rate.
    const std::string empty = CacheStats{}.to_json();
    const auto empty_fields = parse_flat_json_object(empty);
    EXPECT_EQ(find_json_field(empty_fields, "hit_rate")->value, "0");
}

TEST(SharedCache, CrossRunSharingIsBitIdenticalAndHits)
{
    // Two identical runs over one process-wide cache: the second hits
    // the first's entries, and both records match the uncached solo
    // run exactly — the serving cache is a pure memoizer.
    const RunSpec spec =
        RunSpec::parse("problem=maxcut:ring-6 warmup=6 iterations=6");
    const RunRecord solo = execute_run_spec(spec);

    RunContext context;
    context.shared_cache =
        std::make_shared<EvaluationCache>(cache_on());
    const RunRecord first = execute_run_spec(spec, context);
    const CacheStats after_first = context.shared_cache->stats();
    EXPECT_GT(after_first.misses, 0u);

    const RunRecord second = execute_run_spec(spec, context);
    const CacheStats after_second = context.shared_cache->stats();
    EXPECT_GT(after_second.hits, after_first.hits);
    // Every point of the second run was already materialized.
    EXPECT_EQ(after_second.entries, after_first.entries);

    for (const RunRecord* record : {&first, &second}) {
        EXPECT_EQ(record->best_objective, solo.best_objective);
        EXPECT_EQ(record->cafqa_energy, solo.cafqa_energy);
        EXPECT_EQ(record->evaluations_to_best, solo.evaluations_to_best);
        EXPECT_EQ(record->stop_reason, solo.stop_reason);
    }

    // Distinct problems sharing the cache must not alias: a different
    // instance over the same cache still matches ITS solo run.
    const RunSpec other =
        RunSpec::parse("problem=maxcut:ring-8 warmup=6 iterations=6");
    const RunRecord other_solo = execute_run_spec(other);
    const RunRecord other_shared = execute_run_spec(other, context);
    EXPECT_EQ(other_shared.best_objective, other_solo.best_objective);
    EXPECT_EQ(other_shared.cafqa_energy, other_solo.cafqa_energy);
}

} // namespace
} // namespace cafqa
