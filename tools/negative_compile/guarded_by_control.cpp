/**
 * @file
 * Negative-compile CONTROL: identical to guarded_by_violation.cpp
 * except the guarded member is only touched with the lock held. This
 * file MUST build under `-Wthread-safety -Werror=thread-safety-analysis`
 * — if it does not, the check setup itself is broken (wrong flags,
 * wrong include path) and the violation check would prove nothing.
 */
#include "common/thread_safety.hpp"

namespace {

class Counter
{
  public:
    void increment()
    {
        cafqa::MutexLock lock(mutex_);
        ++value_;
    }

    int value()
    {
        cafqa::MutexLock lock(mutex_);
        return value_;
    }

  private:
    cafqa::Mutex mutex_;
    int value_ CAFQA_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.increment();
    return counter.value() == 1 ? 0 : 1;
}
