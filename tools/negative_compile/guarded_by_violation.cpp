/**
 * @file
 * Negative-compile check: this file touches a CAFQA_GUARDED_BY member
 * WITHOUT holding its mutex and therefore MUST FAIL to build under
 * `-Wthread-safety -Werror=thread-safety-analysis`. CMake's
 * try_compile asserts the failure at configure time (clang only); if
 * this ever compiles, the annotation macros have stopped expanding to
 * real attributes.
 */
#include "common/thread_safety.hpp"

namespace {

class Counter
{
  public:
    // BUG (deliberate): writes the guarded member lock-free.
    void increment() { ++value_; }

  private:
    cafqa::Mutex mutex_;
    int value_ CAFQA_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.increment();
    return 0;
}
