// Fixture for the wall-clock-in-logic rule: system_clock outside the
// telemetry/bench exemption paths.
#include <chrono>

long stamp()
{
    const auto now = std::chrono::system_clock::now();
    return now.time_since_epoch().count();
}
