// Fixture: every line here must trip `unseeded-rng`.
#include <cstdlib>
#include <random>

int f()
{
    std::random_device device;
    srand(device());
    return rand() % 7;
}
