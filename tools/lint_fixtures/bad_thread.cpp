// Fixture: raw std::thread outside thread_pool/server must trip
// `raw-thread`.
#include <thread>

void f()
{
    std::thread worker([] {});
    worker.join();
}
