// Fixture: a catch-all that neither rethrows nor records must trip
// `catch-swallow`.
void risky();

void f()
{
    try {
        risky();
    } catch (...) {
    }
    try {
        risky();
    } catch (...) {
        int unused = 0;
        (void)unused;
    }
}
