// Fixture for the blocking-under-lock rule: a thread join and a
// CondVar wait on a DIFFERENT mutex, both while a named mutex is
// held. (The std::thread member also trips raw-thread; the test
// counts rules separately.)
#include <thread>

#include "common/thread_safety.hpp"

struct Blocking
{
    void spin()
    {
        cafqa::MutexLock lock(state_mutex_);
        worker_.join();
    }

    void wrong_wait()
    {
        cafqa::MutexLock outer(state_mutex_);
        cafqa::MutexLock inner(io_mutex_);
        ready_.wait(inner);
    }

    cafqa::Mutex state_mutex_{"state_mutex"};
    cafqa::Mutex io_mutex_{"io_mutex"};
    cafqa::CondVar ready_;
    std::thread worker_;
};
