// Lock-order fixture, second half: the inverted acquisition. See
// ring_a.cpp.
#include "common/thread_safety.hpp"

struct RingB
{
    void backward();
};

void RingB::backward()
{
    cafqa::MutexLock b(beta_mutex_);
    cafqa::MutexLock a(alpha_mutex_);
}
