// Lock-order fixture: declares alpha/beta and acquires alpha -> beta.
// Together with ring_b.cpp (which acquires beta -> alpha through the
// cross-file ident map) this forms a two-mutex cycle. Never compiled;
// scanned by the lock-order pass tests and the lock_cycle ctest.
#include "common/thread_safety.hpp"

struct RingA
{
    void forward()
    {
        cafqa::MutexLock a(alpha_mutex_);
        cafqa::MutexLock b(beta_mutex_);
    }

    cafqa::Mutex alpha_mutex_{"alpha_mutex"};
    cafqa::Mutex beta_mutex_{"beta_mutex"};
};
