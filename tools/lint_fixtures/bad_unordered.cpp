// Fixture: range-for over an unordered container must trip
// `unordered-iter` — including members declared across lines with a
// trailing attribute macro, and via a struct qualifier.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

#define FAKE_GUARDED_BY(x)

struct State
{
    std::unordered_map<std::string, int>
        counters FAKE_GUARDED_BY(mutex_);
    std::unordered_set<int> ids;
};

void dump(const State& state)
{
    for (const auto& [name, value] : state.counters) {
        std::printf("%s=%d\n", name.c_str(), value);
    }
    for (int id : state.ids) {
        std::printf("%d\n", id);
    }
}
