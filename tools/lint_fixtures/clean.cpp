// Fixture: must lint clean. Exercises the escape hatch (allow WITH a
// reason), handled catch-alls, ordered-map iteration, and rule tokens
// hidden inside comments and string literals.
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

struct Bridge
{
    // lint:allow(naked-mutex) interop shim: hands the raw handle to a
    // C library that expects a std::mutex.
    std::mutex raw_handle;
};

// Comment mentioning std::thread and rand() must not trip anything.
const char* kDoc = "call rand() via std::thread under std::mutex";

struct Totals
{
    std::unordered_map<std::string, int> by_name;
    std::map<std::string, int> sorted;
};

int sum(const Totals& totals)
{
    int total = 0;
    // Ordered map: fine to iterate.
    for (const auto& [name, value] : totals.sorted) {
        (void)name;
        total += value;
    }
    // lint:allow(unordered-iter) order-insensitive fold: addition is
    // commutative, nothing is serialized.
    for (const auto& [name, value] : totals.by_name) {
        (void)name;
        total += value;
    }
    return total;
}

void guarded()
{
    try {
        std::printf("%d\n", 1);
    } catch (...) {
        throw;
    }
    try {
        std::printf("%d\n", 2);
    } catch (...) {
        std::exception_ptr error = std::current_exception();
        (void)error;
    }
}
