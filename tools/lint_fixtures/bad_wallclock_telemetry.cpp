// Fixture for the wall-clock-in-logic carve-out being path-exact:
// "telemetry" in the file name does NOT grant the src/telemetry/
// exemption — this file must still fire.
#include <chrono>

double telemetry_flavoured_stamp()
{
    const auto now = std::chrono::system_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}
