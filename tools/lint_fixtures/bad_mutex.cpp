// Fixture: naked standard mutex primitives must trip `naked-mutex`.
#include <condition_variable>
#include <mutex>

struct Widget
{
    std::mutex mutex;
    std::condition_variable cv;
    std::shared_mutex cache_mutex;
};
