// Fixture: malformed suppressions must trip `bad-allow` (and the
// reason-less one must NOT suppress the underlying finding).
#include <mutex>

struct Widget
{
    std::mutex mutex; // lint:allow(naked-mutex)
    std::mutex other; // lint:allow(not-a-real-rule) because reasons
};
