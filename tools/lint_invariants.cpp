/**
 * @file
 * `lint_invariants` — walk C++ sources and enforce the project
 * invariants documented in tools/lint/linter.hpp, plus the lock-order
 * pass documented in tools/lint/lock_order.hpp.
 *
 *   lint_invariants [options] <file-or-directory>...
 *
 *   --list-rules              print rule names and exit
 *   --format=text|json|github output format (default text)
 *   --lock-manifest=PATH      diff the discovered lock graph against
 *                             the committed acquisition-order manifest
 *   --write-lock-manifest     regenerate the manifest in place
 *                             (carrying its `dynamic` edges forward)
 *                             instead of reporting drift
 *   --lock-dot=PATH           write the lock graph as Graphviz DOT
 *   --lock-json=PATH          write the lock graph as JSON
 *
 * Directories are walked recursively for .hpp/.h/.hh/.cpp/.cc/.cxx
 * files (deterministic sorted order); `lint_fixtures` and
 * `negative_compile` subtrees are skipped unless named explicitly.
 * Text output: one `file:line: [rule] message` per finding, then a
 * per-rule hit summary for CI logs.
 *
 * Exit codes:
 *   0  clean (honoured `lint:allow` suppressions are fine)
 *   1  at least one finding
 *   2  usage error, nonexistent path, unreadable file, or malformed
 *      manifest
 */
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"
#include "lint/lock_order.hpp"

namespace fs = std::filesystem;

namespace {

bool
lintable(const fs::path& path)
{
    static const std::vector<std::string> kExtensions = {
        ".hpp", ".h", ".hh", ".cpp", ".cc", ".cxx"};
    const std::string ext = path.extension().string();
    return std::find(kExtensions.begin(), kExtensions.end(), ext) !=
           kExtensions.end();
}

/** Subtrees that exist to FAIL the linter; a directory walk skips
 *  them (naming a fixture file explicitly still lints it). */
bool
excluded_dir(const fs::path& path)
{
    const std::string name = path.filename().string();
    return name == "lint_fixtures" || name == "negative_compile";
}

std::string
json_escape(const std::string& s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') { out += '\\'; }
        out += c;
    }
    return out;
}

bool
write_text_file(const std::string& path, const std::string& text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> files;
    std::string format = "text";
    std::string manifest_path;
    std::string dot_path;
    std::string json_path;
    bool write_manifest = false;
    bool saw_path = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string& rule : cafqa::lint::rule_names()) {
                std::printf("%s\n", rule.c_str());
            }
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: lint_invariants [--list-rules] "
                "[--format=text|json|github] [--lock-manifest=PATH] "
                "[--write-lock-manifest] [--lock-dot=PATH] "
                "[--lock-json=PATH] <path>...\n");
            return 0;
        }
        if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "json" && format != "github") {
                std::fprintf(stderr,
                             "lint_invariants: unknown format: %s\n",
                             format.c_str());
                return 2;
            }
            continue;
        }
        if (arg.rfind("--lock-manifest=", 0) == 0) {
            manifest_path = arg.substr(16);
            continue;
        }
        if (arg == "--write-lock-manifest") {
            write_manifest = true;
            continue;
        }
        if (arg.rfind("--lock-dot=", 0) == 0) {
            dot_path = arg.substr(11);
            continue;
        }
        if (arg.rfind("--lock-json=", 0) == 0) {
            json_path = arg.substr(12);
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "lint_invariants: unknown option: %s\n",
                         arg.c_str());
            return 2;
        }
        saw_path = true;
        std::error_code ec;
        if (fs::is_directory(arg, ec)) {
            fs::recursive_directory_iterator it(arg);
            for (; it != fs::recursive_directory_iterator();) {
                if (it->is_directory() && excluded_dir(it->path())) {
                    it.disable_recursion_pending();
                } else if (it->is_regular_file() && lintable(it->path())) {
                    files.push_back(it->path().generic_string());
                }
                ++it;
            }
        } else if (fs::is_regular_file(arg, ec)) {
            files.push_back(arg);
        } else {
            std::fprintf(stderr, "lint_invariants: no such path: %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (!saw_path) {
        std::fprintf(stderr,
                     "usage: lint_invariants [options] <path>...\n");
        return 2;
    }
    if (write_manifest && manifest_path.empty()) {
        std::fprintf(stderr, "lint_invariants: --write-lock-manifest "
                             "requires --lock-manifest=PATH\n");
        return 2;
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Phase 1: read everything once. Unordered container names are
    // collected across the WHOLE tree (a member declared unordered in
    // a header is still caught when the matching .cpp iterates it),
    // and the lock-order pass needs every TU for its interprocedural
    // summaries.
    std::set<std::string> unordered;
    std::vector<std::string> contents(files.size());
    std::vector<bool> readable(files.size(), false);
    std::vector<cafqa::lint::SourceFile> sources;
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::ifstream in(files[i], std::ios::binary);
        if (in) {
            std::ostringstream buffer;
            buffer << in.rdbuf();
            contents[i] = buffer.str();
            readable[i] = true;
            const auto names =
                cafqa::lint::unordered_container_names(contents[i]);
            unordered.insert(names.begin(), names.end());
            sources.push_back({files[i], contents[i]});
        }
    }

    const cafqa::lint::LockGraph graph =
        cafqa::lint::analyze_lock_order(sources);

    // Phase 2: lint each file; the lock pass's per-file findings ride
    // through the same lint:allow resolution as the native rules.
    std::vector<cafqa::lint::Finding> findings;
    std::size_t allows_used = 0;
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::vector<cafqa::lint::Finding> extra;
        const auto it = graph.file_findings.find(files[i]);
        if (it != graph.file_findings.end()) { extra = it->second; }
        cafqa::lint::FileReport report =
            readable[i]
                ? cafqa::lint::lint_source(files[i], contents[i], unordered,
                                           extra)
                : cafqa::lint::lint_file(files[i], unordered);
        allows_used += report.allows_used;
        findings.insert(findings.end(), report.findings.begin(),
                        report.findings.end());
    }

    // Phase 3: graph-level checks (not suppressible; the manifest is
    // the reviewed escape hatch).
    cafqa::lint::LockManifest manifest;
    const cafqa::lint::LockManifest* manifest_ptr = nullptr;
    if (!manifest_path.empty()) {
        std::ifstream in(manifest_path, std::ios::binary);
        std::ostringstream buffer;
        if (in) { buffer << in.rdbuf(); }
        std::string error;
        if (!in && !write_manifest) {
            std::fprintf(stderr, "lint_invariants: cannot open manifest: %s\n",
                         manifest_path.c_str());
            return 2;
        }
        if (in &&
            !cafqa::lint::parse_lock_manifest(buffer.str(), manifest, error)) {
            std::fprintf(stderr, "lint_invariants: %s: %s\n",
                         manifest_path.c_str(), error.c_str());
            return 2;
        }
        manifest_ptr = &manifest;
    }
    if (write_manifest) {
        const std::string rendered =
            cafqa::lint::render_lock_manifest(graph, manifest_ptr);
        if (!write_text_file(manifest_path, rendered)) {
            std::fprintf(stderr, "lint_invariants: cannot write %s\n",
                         manifest_path.c_str());
            return 2;
        }
        std::string error;
        cafqa::lint::parse_lock_manifest(rendered, manifest, error);
        manifest_ptr = &manifest;
    } else if (manifest_ptr != nullptr) {
        const auto drift = cafqa::lint::check_lock_manifest(
            graph, manifest, manifest_path);
        findings.insert(findings.end(), drift.begin(), drift.end());
    }
    const auto cycles = cafqa::lint::find_lock_cycles(graph, manifest_ptr);
    findings.insert(findings.end(), cycles.begin(), cycles.end());

    if (!dot_path.empty() &&
        !write_text_file(dot_path,
                         cafqa::lint::lock_graph_dot(graph, manifest_ptr))) {
        std::fprintf(stderr, "lint_invariants: cannot write %s\n",
                     dot_path.c_str());
        return 2;
    }
    if (!json_path.empty() &&
        !write_text_file(json_path, cafqa::lint::lock_graph_json(graph))) {
        std::fprintf(stderr, "lint_invariants: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    bool io_error = false;
    for (const auto& finding : findings) {
        io_error = io_error || finding.rule == "io-error";
    }
    if (format == "json") {
        std::printf("{\n  \"files\": %zu,\n  \"allows_used\": %zu,\n"
                    "  \"findings\": [",
                    files.size(), allows_used);
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const auto& f = findings[i];
            std::printf("%s    {\"file\": \"%s\", \"line\": %zu, "
                        "\"rule\": \"%s\", \"message\": \"%s\"}",
                        i == 0 ? "\n" : ",\n", json_escape(f.file).c_str(),
                        f.line, json_escape(f.rule).c_str(),
                        json_escape(f.message).c_str());
        }
        std::printf("\n  ]\n}\n");
    } else if (format == "github") {
        for (const auto& f : findings) {
            std::printf("::error file=%s,line=%zu,title=%s::%s\n",
                        f.file.c_str(), f.line, f.rule.c_str(),
                        f.message.c_str());
        }
    } else {
        for (const auto& f : findings) {
            std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        }
        // Rule-hit summary (one stable block CI can grep / publish).
        std::printf("lint_invariants: %zu file(s), %zu finding(s), "
                    "%zu allow(s) honoured\n",
                    files.size(), findings.size(), allows_used);
        for (const auto& [rule, hits] : cafqa::lint::rule_hits(findings)) {
            std::printf("  %-16s %zu\n", rule.c_str(), hits);
        }
    }

    if (io_error) {
        return 2;
    }
    return findings.empty() ? 0 : 1;
}
