/**
 * @file
 * `lint_invariants` — walk C++ sources and enforce the project
 * invariants documented in tools/lint/linter.hpp.
 *
 *   lint_invariants [--list-rules] <file-or-directory>...
 *
 * Directories are walked recursively for .hpp/.h/.hh/.cpp/.cc/.cxx
 * files (deterministic sorted order). Output: one `file:line: [rule]
 * message` per finding, then a per-rule hit summary for CI logs.
 *
 * Exit codes:
 *   0  clean (honoured `lint:allow` suppressions are fine)
 *   1  at least one finding
 *   2  usage error, nonexistent path, or unreadable file
 */
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace fs = std::filesystem;

namespace {

bool
lintable(const fs::path& path)
{
    static const std::vector<std::string> kExtensions = {
        ".hpp", ".h", ".hh", ".cpp", ".cc", ".cxx"};
    const std::string ext = path.extension().string();
    return std::find(kExtensions.begin(), kExtensions.end(), ext) !=
           kExtensions.end();
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> files;
    bool saw_path = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string& rule : cafqa::lint::rule_names()) {
                std::printf("%s\n", rule.c_str());
            }
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: lint_invariants [--list-rules] <path>...\n");
            return 0;
        }
        saw_path = true;
        std::error_code ec;
        if (fs::is_directory(arg, ec)) {
            for (const auto& entry :
                 fs::recursive_directory_iterator(arg)) {
                if (entry.is_regular_file() && lintable(entry.path())) {
                    files.push_back(entry.path().generic_string());
                }
            }
        } else if (fs::is_regular_file(arg, ec)) {
            files.push_back(arg);
        } else {
            std::fprintf(stderr, "lint_invariants: no such path: %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (!saw_path) {
        std::fprintf(stderr,
                     "usage: lint_invariants [--list-rules] <path>...\n");
        return 2;
    }
    std::sort(files.begin(), files.end());

    // Phase 1: unordered container names across the WHOLE tree, so a
    // member declared unordered in a header is still caught when the
    // matching .cpp iterates it.
    std::set<std::string> unordered;
    std::vector<std::string> contents(files.size());
    std::vector<bool> readable(files.size(), false);
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::ifstream in(files[i], std::ios::binary);
        if (in) {
            std::ostringstream buffer;
            buffer << in.rdbuf();
            contents[i] = buffer.str();
            readable[i] = true;
            const auto names =
                cafqa::lint::unordered_container_names(contents[i]);
            unordered.insert(names.begin(), names.end());
        }
    }

    // Phase 2: lint each file against the union.
    std::vector<cafqa::lint::Finding> findings;
    std::size_t allows_used = 0;
    for (std::size_t i = 0; i < files.size(); ++i) {
        cafqa::lint::FileReport report =
            readable[i]
                ? cafqa::lint::lint_source(files[i], contents[i],
                                           unordered)
                : cafqa::lint::lint_file(files[i], unordered);
        allows_used += report.allows_used;
        findings.insert(findings.end(), report.findings.begin(),
                        report.findings.end());
    }

    bool io_error = false;
    for (const auto& finding : findings) {
        std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(),
                    finding.line, finding.rule.c_str(),
                    finding.message.c_str());
        io_error = io_error || finding.rule == "io-error";
    }

    // Rule-hit summary (one stable block CI can grep / publish).
    std::printf("lint_invariants: %zu file(s), %zu finding(s), "
                "%zu allow(s) honoured\n",
                files.size(), findings.size(), allows_used);
    for (const auto& [rule, hits] : cafqa::lint::rule_hits(findings)) {
        std::printf("  %-16s %zu\n", rule.c_str(), hits);
    }

    if (io_error) {
        return 2;
    }
    return findings.empty() ? 0 : 1;
}
