/**
 * @file
 * Project-invariant linter for the CAFQA tree (`lint_invariants`).
 *
 * The repo has a handful of concurrency/determinism invariants that
 * the compiler cannot enforce and that review keeps re-litigating.
 * This linter makes them mechanical. Rules:
 *
 *   unseeded-rng    No `rand()`, `srand()` or `std::random_device`.
 *                   All randomness must flow through the seeded RNG
 *                   plumbing (`common/rng.hpp`) so runs replay.
 *   raw-thread      No raw `std::thread` outside the two sanctioned
 *                   homes (`common/thread_pool.*`, `src/server/`).
 *                   Everything else goes through `ThreadPool`.
 *   unordered-iter  No range-for over a variable declared as a
 *                   `std::unordered_{map,set,multimap,multiset}` —
 *                   iteration order is unspecified, so such loops
 *                   feeding serialization or output make results
 *                   nondeterministic across libstdc++ versions.
 *   naked-mutex     No `std::mutex` / `std::condition_variable`
 *                   outside `common/thread_safety.hpp`. Use the
 *                   annotated `cafqa::Mutex` / `cafqa::CondVar`
 *                   wrappers so clang -Wthread-safety sees the locks.
 *   catch-swallow   No `catch (...)` that neither rethrows (`throw`)
 *                   nor records the error (`current_exception`).
 *                   Silent swallowing hides worker crashes.
 *   wall-clock-in-logic
 *                   No `system_clock` outside telemetry/bench paths —
 *                   logic keyed to wall time is irreproducible; use
 *                   steady_clock for durations.
 *
 * The lock-order pass (tools/lint/lock_order.hpp) contributes four
 * more per-file rules, routed through the same `lint:allow` machinery
 * via `lint_source`'s `extra_candidates` parameter:
 *
 *   blocking-under-lock   Socket I/O, `parallel_for`, `Pipeline::run`,
 *                         sleeps, `join`, or `CondVar::wait` on a
 *                         DIFFERENT mutex while a named mutex is held.
 *   unnamed-mutex         `cafqa::Mutex` in src/ without a registered
 *                         name (invisible to the order analysis).
 *   mutex-name-mismatch   Registered name != identifier minus trailing
 *                         underscores.
 *   duplicate-mutex       Two declarations registering the same name.
 *
 * Suppression: a violating line (or the line directly above it) may
 * carry a `lint:allow(<rule>) <reason>` line comment. The reason is
 * mandatory —
 * an allow without one, or naming an unknown rule, is itself reported
 * (rule `bad-allow`) and cannot be suppressed.
 *
 * The matching is lexical (comments and string/char literals are
 * blanked first), deliberately simple and deterministic; `lint:allow`
 * is the escape hatch for the rare justified exception.
 */
#ifndef CAFQA_TOOLS_LINT_LINTER_HPP
#define CAFQA_TOOLS_LINT_LINTER_HPP

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cafqa::lint {

/** One rule violation (or malformed suppression). */
struct Finding
{
    std::string file;
    std::size_t line = 0; // 1-based
    std::string rule;
    std::string message;
};

/** Result of linting one file / source buffer. */
struct FileReport
{
    std::vector<Finding> findings;
    /** Suppressions that matched a finding (honoured allows). */
    std::size_t allows_used = 0;
};

/** The enforced rule names (excludes the meta rule `bad-allow`). */
const std::vector<std::string>& rule_names();

/**
 * Names declared with an unordered container type in `text`. The
 * `unordered-iter` rule needs these ACROSS files: members are
 * declared unordered in a header but iterated in the matching .cpp,
 * so the driver collects the union over the whole tree first and
 * passes it back in via `cross_file_unordered`.
 */
std::set<std::string> unordered_container_names(const std::string& text);

/** Lint an in-memory buffer. `display_path` labels findings and
 *  drives the path-based exemptions (thread_safety.hpp, thread_pool,
 *  server/). `extra_candidates` are findings produced by other passes
 *  (the lock-order pass) for THIS file, merged in before `lint:allow`
 *  resolution so they are suppressible like native rules. */
FileReport lint_source(const std::string& display_path,
                       const std::string& text,
                       const std::set<std::string>& cross_file_unordered = {},
                       const std::vector<Finding>& extra_candidates = {});

/** Lint a file on disk. Unreadable file -> one finding with rule
 *  "io-error". */
FileReport lint_file(const std::string& path,
                     const std::set<std::string>& cross_file_unordered = {});

/** Aggregate per-rule hit counts (the CI summary table). */
std::map<std::string, std::size_t>
rule_hits(const std::vector<Finding>& findings);

} // namespace cafqa::lint

#endif // CAFQA_TOOLS_LINT_LINTER_HPP
