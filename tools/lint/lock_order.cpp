/**
 * @file
 * Implementation of the lock-order analysis pass. See lock_order.hpp
 * for the contract. Deliberately lexical: the pass understands exactly
 * the locking idioms this tree commits to (named `cafqa::Mutex`
 * members, `MutexLock` scopes, `*_locked()` helpers carrying
 * `CAFQA_REQUIRES`) and refuses to guess beyond them — anything it
 * cannot see (acquisitions behind a `std::function` indirection) is
 * covered by reviewed `dynamic` manifest edges instead.
 */
#include "lint/lock_order.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <regex>
#include <sstream>

namespace cafqa::lint {
namespace {

bool is_ident(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * Blank comment bodies in both output copies, and string/char CONTENTS
 * in `code` only (delimiters are kept in both so byte positions line
 * up across the copies — mutex names are later read out of
 * `with_strings` at positions found in `code`).
 */
void sanitize(const std::string& text, std::string& code,
              std::string& with_strings)
{
    code = text;
    with_strings = text;
    enum class St { Normal, Line, Block, Str, Chr, Raw };
    St st = St::Normal;
    std::string raw_end;
    auto blank_both = [&](std::size_t i) {
        if (text[i] != '\n') { code[i] = ' '; with_strings[i] = ' '; }
    };
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        switch (st) {
        case St::Normal:
            if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
                st = St::Line;
                blank_both(i);
            } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
                st = St::Block;
                blank_both(i);
            } else if (c == '"') {
                if (i > 0 && text[i - 1] == 'R' &&
                    (i < 2 || !is_ident(text[i - 2]))) {
                    const std::size_t open = text.find('(', i + 1);
                    if (open != std::string::npos) {
                        raw_end = ")" + text.substr(i + 1, open - i - 1) + "\"";
                        for (std::size_t j = i + 1; j <= open; ++j) {
                            if (text[j] != '\n') { code[j] = ' '; }
                        }
                        i = open;
                        st = St::Raw;
                        break;
                    }
                }
                st = St::Str;
            } else if (c == '\'' && !(i > 0 && is_ident(text[i - 1]))) {
                st = St::Chr; // ident guard skips digit separators (1'000)
            }
            break;
        case St::Line:
            if (c == '\n') { st = St::Normal; } else { blank_both(i); }
            break;
        case St::Block:
            if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
                blank_both(i);
                blank_both(i + 1);
                ++i;
                st = St::Normal;
            } else {
                blank_both(i);
            }
            break;
        case St::Str:
            if (c == '\\' && i + 1 < text.size()) {
                code[i] = ' ';
                if (text[i + 1] != '\n') { code[i + 1] = ' '; }
                ++i;
            } else if (c == '"' || c == '\n') {
                st = St::Normal;
            } else {
                code[i] = ' ';
            }
            break;
        case St::Chr:
            if (c == '\\' && i + 1 < text.size()) {
                code[i] = ' ';
                if (text[i + 1] != '\n') { code[i + 1] = ' '; }
                ++i;
            } else if (c == '\'' || c == '\n') {
                st = St::Normal;
            } else {
                code[i] = ' ';
            }
            break;
        case St::Raw:
            if (text.compare(i, raw_end.size(), raw_end) == 0) {
                for (std::size_t j = i; j < i + raw_end.size(); ++j) {
                    code[j] = ' ';
                }
                i += raw_end.size() - 1;
                st = St::Normal;
            } else if (c != '\n') {
                code[i] = ' ';
            }
            break;
        }
    }
}

/** Blank preprocessor directive lines (with `\` continuations) so
 *  `#define`/`#if` bodies never reach the structure scan. */
void blank_preprocessor(std::string& code)
{
    std::size_t i = 0;
    while (i < code.size()) {
        std::size_t ls = i;
        std::size_t le = code.find('\n', ls);
        if (le == std::string::npos) { le = code.size(); }
        std::size_t p = ls;
        while (p < le && (code[p] == ' ' || code[p] == '\t')) { ++p; }
        if (p < le && code[p] == '#') {
            for (;;) {
                const bool cont = le > ls && code[le - 1] == '\\';
                for (std::size_t j = ls; j < le; ++j) { code[j] = ' '; }
                if (!cont || le >= code.size()) { break; }
                ls = le + 1;
                le = code.find('\n', ls);
                if (le == std::string::npos) { le = code.size(); }
            }
        }
        i = (le == code.size()) ? le : le + 1;
    }
}

struct LineIndex
{
    std::vector<std::size_t> starts;
    explicit LineIndex(const std::string& text)
    {
        starts.push_back(0);
        for (std::size_t i = 0; i < text.size(); ++i) {
            if (text[i] == '\n') { starts.push_back(i + 1); }
        }
    }
    std::size_t line_of(std::size_t pos) const
    {
        return static_cast<std::size_t>(
            std::upper_bound(starts.begin(), starts.end(), pos) -
            starts.begin());
    }
};

std::size_t match_brace(const std::string& code, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '{') {
            ++depth;
        } else if (code[i] == '}') {
            if (--depth == 0) { return i; }
        }
    }
    return code.size();
}

std::size_t match_paren(const std::string& code, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '(') {
            ++depth;
        } else if (code[i] == ')') {
            if (--depth == 0) { return i; }
        }
    }
    return code.size();
}

std::size_t skip_ws(const std::string& code, std::size_t i)
{
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
    }
    return i;
}

/** Index of the last non-whitespace char strictly before `i`, or npos. */
std::size_t prev_sig(const std::string& code, std::size_t i)
{
    while (i > 0) {
        --i;
        if (std::isspace(static_cast<unsigned char>(code[i])) == 0) {
            return i;
        }
    }
    return std::string::npos;
}

std::string last_ident_in(const std::string& expr)
{
    std::size_t end = expr.size();
    while (end > 0 && !is_ident(expr[end - 1])) { --end; }
    if (end == 0) { return {}; }
    std::size_t begin = end;
    while (begin > 0 && is_ident(expr[begin - 1])) { --begin; }
    return expr.substr(begin, end - begin);
}

/** One function (or method) definition discovered by the structure
 *  scan; `key` is "Class::name" or just "name" at namespace scope. */
struct FunctionDef
{
    std::string cls;
    std::string name;
    std::string key;
    std::string file;
    std::size_t body_begin = 0; // position of '{'
    std::size_t body_end = 0;   // position of matching '}'
    std::size_t line = 0;
};

bool slice_class_name(const std::string& slice, std::string& name)
{
    std::size_t i = skip_ws(slice, 0);
    if (slice.compare(i, 8, "template") == 0) {
        i = skip_ws(slice, i + 8);
        if (i < slice.size() && slice[i] == '<') {
            int depth = 0;
            for (; i < slice.size(); ++i) {
                if (slice[i] == '<') { ++depth; }
                if (slice[i] == '>' && --depth == 0) { ++i; break; }
            }
        }
        i = skip_ws(slice, i);
    }
    static const std::regex re(R"(^(class|struct)\s+([A-Za-z_]\w*))");
    std::smatch m;
    const std::string rest = slice.substr(i);
    if (!std::regex_search(rest, m, re)) { return false; }
    name = m[2];
    return true;
}

bool slice_function_name(const std::string& slice, std::string& qname)
{
    const std::size_t first_paren = slice.find('(');
    if (first_paren == std::string::npos) { return false; }
    int bal = 0;
    for (const char c : slice) {
        if (c == '(') { ++bal; }
        if (c == ')') { --bal; }
        if (bal < 0) { return false; }
    }
    if (bal != 0) { return false; }
    // `= ...` before the first paren is an initializer, and `= [` a
    // lambda assignment — neither declares a function.
    const std::size_t eq = slice.find('=');
    if (eq != std::string::npos && eq < first_paren) { return false; }
    if (std::regex_search(slice, std::regex(R"(=\s*\[)"))) { return false; }
    static const std::regex re(
        R"(([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\()");
    std::smatch m;
    if (!std::regex_search(slice, m, re)) { return false; }
    qname = m[1];
    qname.erase(std::remove_if(qname.begin(), qname.end(),
                               [](unsigned char c) {
                                   return std::isspace(c) != 0;
                               }),
                qname.end());
    static const std::set<std::string> kw = {
        "if",     "for",    "while",  "switch",        "catch",
        "return", "do",     "sizeof", "static_assert", "decltype",
        "throw",  "new",    "delete", "alignas",       "alignof",
        "assert", "typeid", "defined"};
    const std::size_t head_end = qname.find(':');
    if (kw.count(qname.substr(0, head_end)) != 0) { return false; }
    return true;
}

/** Structure scan: namespaces are transparent, class bodies are
 *  entered (with the class name pushed as context), enum bodies and
 *  non-function brace constructs are skipped, function bodies are
 *  recorded and skipped (the body walker handles them later). */
void scan_structure(const std::string& file, const std::string& code,
                    const LineIndex& lines, std::vector<FunctionDef>& defs,
                    std::set<std::string>& classes)
{
    static const std::regex re_enum(R"(\benum\b)");
    static const std::regex re_namespace(R"(\bnamespace\b)");
    struct ClassCtx
    {
        std::string name;
        std::size_t end;
    };
    std::vector<ClassCtx> stack;
    std::size_t boundary = 0;
    std::size_t i = 0;
    while (i < code.size()) {
        while (!stack.empty() && stack.back().end <= i) { stack.pop_back(); }
        const char c = code[i];
        if (c == ';' || c == '}') {
            boundary = i + 1;
            ++i;
            continue;
        }
        if (c != '{') {
            ++i;
            continue;
        }
        const std::string slice = code.substr(boundary, i - boundary);
        const std::size_t close = match_brace(code, i);
        if (std::regex_search(slice, re_enum)) {
            boundary = close + 1;
            i = close + 1;
            continue;
        }
        std::string cname;
        if (slice_class_name(slice, cname)) {
            classes.insert(cname);
            stack.push_back({cname, close});
            boundary = i + 1;
            ++i;
            continue;
        }
        if (std::regex_search(slice, re_namespace)) {
            boundary = i + 1;
            ++i;
            continue;
        }
        std::string qname;
        if (slice_function_name(slice, qname)) {
            FunctionDef def;
            const std::size_t sep = qname.rfind("::");
            if (sep != std::string::npos) {
                def.name = qname.substr(sep + 2);
                const std::string prefix = qname.substr(0, sep);
                const std::size_t psep = prefix.rfind("::");
                def.cls = (psep == std::string::npos)
                              ? prefix
                              : prefix.substr(psep + 2);
            } else {
                def.name = qname;
                def.cls = stack.empty() ? std::string() : stack.back().name;
            }
            def.key = def.cls.empty() ? def.name : def.cls + "::" + def.name;
            def.file = file;
            def.body_begin = i;
            def.body_end = close;
            def.line = lines.line_of(i);
            defs.push_back(def);
            boundary = close + 1;
            i = close + 1;
            continue;
        }
        boundary = close + 1;
        i = close + 1;
    }
}

void add_finding(std::map<std::string, std::vector<Finding>>& sink,
                 const std::string& file, std::size_t line,
                 const std::string& rule, const std::string& message)
{
    Finding f;
    f.file = file;
    f.line = line;
    f.rule = rule;
    f.message = message;
    sink[file].push_back(f);
}

/** `cafqa::Mutex` declarations in one file; registered names are read
 *  from the string-preserving copy at the positions the string-blanked
 *  copy located. */
void scan_mutex_decls(const std::string& file, const std::string& code,
                      const std::string& with_strings, const LineIndex& lines,
                      std::vector<MutexDecl>& decls)
{
    static const std::regex re(R"(\bMutex\s+([A-Za-z_]\w*)\s*([;{=(]))");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
        MutexDecl decl;
        decl.ident = (*it)[1];
        decl.file = file;
        decl.line = lines.line_of(static_cast<std::size_t>(it->position(0)));
        const char term = it->str(2)[0];
        if (term == '{' || term == '(') {
            const std::size_t open =
                static_cast<std::size_t>(it->position(2));
            const std::size_t close = (term == '{')
                                          ? match_brace(code, open)
                                          : match_paren(code, open);
            const std::string init =
                with_strings.substr(open, close > open ? close - open : 0);
            static const std::regex re_lit("\"([^\"]*)\"");
            std::smatch m;
            if (std::regex_search(init, m, re_lit)) { decl.name = m[1]; }
        }
        decls.push_back(decl);
    }
}

/** Expected registered name for a declared identifier: the identifier
 *  with trailing underscores stripped. */
std::string expected_name(const std::string& ident)
{
    std::size_t end = ident.size();
    while (end > 0 && ident[end - 1] == '_') { --end; }
    return ident.substr(0, end);
}

/** `CAFQA_REQUIRES(<mutexes>)` attributions: walks backwards over the
 *  parameter list to the method name and records the required mutex
 *  IDENTS per bare method name (resolved to registered names later). */
void scan_requires(const std::string& code,
                   std::map<std::string, std::set<std::string>>& by_method)
{
    static const std::regex re(R"(\bCAFQA_REQUIRES\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                                 it->str(0).size() - 1;
        const std::size_t close = match_paren(code, open);
        std::set<std::string> idents;
        std::stringstream args(code.substr(open + 1, close - open - 1));
        std::string arg;
        while (std::getline(args, arg, ',')) {
            const std::string ident = last_ident_in(arg);
            if (!ident.empty()) { idents.insert(ident); }
        }
        // Walk back: [const|noexcept]* ')' <params> '(' <method name>.
        std::size_t p = prev_sig(code, static_cast<std::size_t>(it->position(0)));
        for (;;) {
            if (p == std::string::npos) { break; }
            if (is_ident(code[p])) {
                std::size_t begin = p;
                while (begin > 0 && is_ident(code[begin - 1])) { --begin; }
                const std::string word = code.substr(begin, p - begin + 1);
                if (word == "const" || word == "noexcept" ||
                    word == "override" || word == "final") {
                    p = prev_sig(code, begin);
                    continue;
                }
                break; // unexpected token; give up on this attribute
            }
            if (code[p] == ')') {
                int depth = 0;
                std::size_t q = p + 1;
                while (q > 0) {
                    --q;
                    if (code[q] == ')') { ++depth; }
                    if (code[q] == '(' && --depth == 0) { break; }
                }
                p = prev_sig(code, q);
                if (p != std::string::npos && is_ident(code[p])) {
                    std::size_t begin = p;
                    while (begin > 0 && is_ident(code[begin - 1])) { --begin; }
                    const std::string name =
                        code.substr(begin, p - begin + 1);
                    by_method[name].insert(idents.begin(), idents.end());
                }
                break;
            }
            break;
        }
    }
}

/**
 * Variable typing: for every known class token, the next identifier —
 * across `>`, `&`, `*`, `const` and whitespace, so smart-pointer
 * declarations type their pointee — is a variable of that class unless
 * it opens a call. Conflicting global entries become ambiguous (erased).
 */
void scan_var_classes(const std::string& code,
                      const std::set<std::string>& classes,
                      std::map<std::string, std::string>& out,
                      std::set<std::string>& ambiguous)
{
    std::size_t i = 0;
    while (i < code.size()) {
        if (!is_ident(code[i])) { ++i; continue; }
        std::size_t end = i;
        while (end < code.size() && is_ident(code[end])) { ++end; }
        const std::string word = code.substr(i, end - i);
        if (classes.count(word) == 0) { i = end; continue; }
        std::size_t j = end;
        for (;;) {
            j = skip_ws(code, j);
            if (j < code.size() &&
                (code[j] == '>' || code[j] == '&' || code[j] == '*')) {
                ++j;
                continue;
            }
            if (code.compare(j, 5, "const") == 0 &&
                (j + 5 >= code.size() || !is_ident(code[j + 5]))) {
                j += 5;
                continue;
            }
            break;
        }
        if (j < code.size() && is_ident(code[j]) &&
            std::isdigit(static_cast<unsigned char>(code[j])) == 0) {
            std::size_t vend = j;
            while (vend < code.size() && is_ident(code[vend])) { ++vend; }
            const std::string var = code.substr(j, vend - j);
            const std::size_t after = skip_ws(code, vend);
            if (!(after < code.size() && code[after] == '(')) {
                auto it = out.find(var);
                if (it == out.end()) {
                    if (ambiguous.count(var) == 0) { out[var] = word; }
                } else if (it->second != word) {
                    out.erase(it);
                    ambiguous.insert(var);
                }
            }
        }
        i = end;
    }
}

/** Per-function summary for the interprocedural closure. */
struct Summary
{
    std::set<std::string> direct; // registered names acquired directly
    std::set<std::string> calls;  // resolved callee keys
};

/** A resolved call made while named mutexes were held. */
struct CallSite
{
    std::string key;
    std::vector<std::string> held;
    std::string file;
    std::size_t line = 0;
};

/** Methods whose bare names are too common for the unique-definition
 *  fallback — calls through unknown receivers with these names are
 *  assumed to be the standard library, not a tree-local definition. */
const std::set<std::string>& stl_like_names()
{
    static const std::set<std::string> names = {
        "size",    "empty",     "clear",   "begin",        "end",
        "push_back", "pop_back", "front",  "back",         "erase",
        "insert",  "find",      "count",   "at",           "reserve",
        "resize",  "emplace",   "emplace_back", "load",    "store",
        "reset",   "get",       "c_str",   "data",         "substr",
        "append",  "join",      "detach",  "lock",         "unlock",
        "try_lock", "wait",     "notify_one", "notify_all", "str",
        "value",   "has_value", "swap",    "push",         "pop",
        "top",     "first",     "second",  "run",          "stop",
        "name",    "what",      "reset_error"};
    return names;
}

const std::set<std::string>& walker_keywords()
{
    static const std::set<std::string> kw = {
        "if",     "for",      "while",   "switch",   "return", "catch",
        "sizeof", "new",      "delete",  "throw",    "else",   "do",
        "case",   "break",    "continue", "const",   "auto",   "static",
        "using",  "template", "typename", "decltype", "assert",
        "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
        "static_assert", "alignof", "alignas", "noexcept", "co_await",
        "CAFQA_ASSERT", "CAFQA_REQUIRES", "CAFQA_EXCLUDES"};
    return kw;
}

struct HeldEntry
{
    std::string var;  // MutexLock variable ("" for REQUIRES seeds)
    std::string name; // registered mutex name ("" if unresolvable)
    int depth = 0;
    bool active = true;
};

struct WalkCtx
{
    const std::string* code = nullptr;
    const std::string* file = nullptr;
    const LineIndex* lines = nullptr;
    const std::map<std::string, std::string>* ident_to_name = nullptr;
    const std::map<std::string, std::string>* vars_file = nullptr;
    const std::map<std::string, std::string>* vars_global = nullptr;
    const std::set<std::string>* vars_global_ambiguous = nullptr;
    const std::set<std::string>* classes = nullptr;
    const std::map<std::string, std::vector<std::string>>* keys_by_bare =
        nullptr;
    const std::set<std::string>* def_keys = nullptr;
    std::vector<LockEdge>* edges = nullptr;
    std::vector<CallSite>* call_sites = nullptr;
    std::map<std::string, std::vector<Finding>>* findings = nullptr;
};

std::vector<std::string> active_names(const std::vector<HeldEntry>& held)
{
    std::vector<std::string> names;
    for (const auto& entry : held) {
        if (entry.active && !entry.name.empty() &&
            std::find(names.begin(), names.end(), entry.name) ==
                names.end()) {
            names.push_back(entry.name);
        }
    }
    return names;
}

void emit_edges(const WalkCtx& ctx, const std::vector<HeldEntry>& held,
                const std::string& to, std::size_t pos)
{
    if (to.empty()) { return; }
    for (const std::string& from : active_names(held)) {
        LockEdge edge;
        edge.from = from;
        edge.to = to;
        edge.file = *ctx.file;
        edge.line = ctx.lines->line_of(pos);
        ctx.edges->push_back(edge);
    }
}

std::string join_names(const std::vector<std::string>& names)
{
    std::string out;
    for (const auto& name : names) {
        if (!out.empty()) { out += ", "; }
        out += "\"" + name + "\"";
    }
    return out;
}

/**
 * Walk one function body (or lambda body), tracking `MutexLock` scopes
 * through braces and the unlock()/lock() dance, emitting direct
 * acquisition edges, blocking-under-lock findings, and resolved call
 * sites. `summary` is null for lambda bodies: a lambda's acquisitions
 * are its own (it runs on whatever thread invokes it later), so they
 * must not leak into the enclosing function's interprocedural summary.
 */
void walk_body(const WalkCtx& ctx, const FunctionDef& def, std::size_t begin,
               std::size_t end, std::vector<HeldEntry> held, Summary* summary)
{
    const std::string& code = *ctx.code;
    int depth = 0;
    std::size_t i = begin + 1;
    while (i < end) {
        const char c = code[i];
        if (c == '{') {
            ++depth;
            ++i;
            continue;
        }
        if (c == '}') {
            --depth;
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const HeldEntry& entry) {
                                          return entry.depth > depth;
                                      }),
                       held.end());
            ++i;
            continue;
        }
        if (c == '[') {
            if (i + 1 < end && code[i + 1] == '[') { // attribute
                const std::size_t close = code.find("]]", i + 2);
                i = (close == std::string::npos) ? end : close + 2;
                continue;
            }
            const std::size_t prev = prev_sig(code, i);
            const bool subscript =
                prev != std::string::npos &&
                (is_ident(code[prev]) || code[prev] == ')' ||
                 code[prev] == ']' || code[prev] == '"');
            if (subscript) {
                ++i;
                continue;
            }
            // Lambda introducer: match the capture list, skip the
            // parameter list, then find the body.
            int bdepth = 0;
            std::size_t cb = i;
            for (; cb < end; ++cb) {
                if (code[cb] == '[') { ++bdepth; }
                if (code[cb] == ']' && --bdepth == 0) { break; }
            }
            std::size_t j = skip_ws(code, cb + 1);
            if (j < end && code[j] == '(') {
                j = skip_ws(code, match_paren(code, j) + 1);
            }
            while (j < end && code[j] != '{' && code[j] != ';' &&
                   code[j] != ',' && code[j] != ')') {
                ++j;
            }
            if (j < end && code[j] == '{') {
                const std::size_t lend = match_brace(code, j);
                walk_body(ctx, def, j, lend, {}, nullptr);
                i = lend + 1;
            } else {
                i = cb + 1;
            }
            continue;
        }
        if (!is_ident(c) || (i > 0 && is_ident(code[i - 1]))) {
            ++i;
            continue;
        }
        std::size_t wend = i;
        while (wend < end && is_ident(code[wend])) { ++wend; }
        const std::string word = code.substr(i, wend - i);
        if (walker_keywords().count(word) != 0) {
            i = wend;
            continue;
        }
        if (word == "MutexLock") {
            std::size_t j = skip_ws(code, wend);
            std::size_t vend = j;
            while (vend < end && is_ident(code[vend])) { ++vend; }
            const std::string var = code.substr(j, vend - j);
            j = skip_ws(code, vend);
            if (!var.empty() && j < end && (code[j] == '(' || code[j] == '{')) {
                const std::size_t close = (code[j] == '(')
                                              ? match_paren(code, j)
                                              : match_brace(code, j);
                const std::string ident =
                    last_ident_in(code.substr(j + 1, close - j - 1));
                std::string name;
                const auto it = ctx.ident_to_name->find(ident);
                if (it != ctx.ident_to_name->end()) { name = it->second; }
                emit_edges(ctx, held, name, i);
                if (summary != nullptr && !name.empty()) {
                    summary->direct.insert(name);
                }
                HeldEntry entry;
                entry.var = var;
                entry.name = name;
                entry.depth = depth;
                held.push_back(entry);
                i = close + 1;
                continue;
            }
            i = wend;
            continue;
        }
        // Call candidate: ident followed by '('.
        const std::size_t after = skip_ws(code, wend);
        if (!(after < end && code[after] == '(')) {
            i = wend;
            continue;
        }
        // Receiver / qualifier.
        std::string receiver;
        std::string qualifier;
        bool member_access = false;
        bool global_qualified = false;
        bool colon_qualified = false;
        const std::size_t prev = prev_sig(code, i);
        if (prev != std::string::npos) {
            if (code[prev] == '.' ||
                (code[prev] == '>' && prev > 0 && code[prev - 1] == '-')) {
                member_access = true;
                const std::size_t rpos =
                    prev_sig(code, code[prev] == '.' ? prev : prev - 1);
                if (rpos != std::string::npos && is_ident(code[rpos])) {
                    std::size_t rbegin = rpos;
                    while (rbegin > 0 && is_ident(code[rbegin - 1])) {
                        --rbegin;
                    }
                    receiver = code.substr(rbegin, rpos - rbegin + 1);
                }
            } else if (code[prev] == ':' && prev > 0 &&
                       code[prev - 1] == ':') {
                colon_qualified = true;
                const std::size_t qpos = prev_sig(code, prev - 1);
                if (qpos != std::string::npos && is_ident(code[qpos])) {
                    std::size_t qbegin = qpos;
                    while (qbegin > 0 && is_ident(code[qbegin - 1])) {
                        --qbegin;
                    }
                    qualifier = code.substr(qbegin, qpos - qbegin + 1);
                } else {
                    global_qualified = true;
                }
            }
        }
        const std::size_t line = ctx.lines->line_of(i);
        // unlock()/lock() on a tracked MutexLock variable.
        if (member_access && (word == "unlock" || word == "lock")) {
            HeldEntry* tracked = nullptr;
            for (auto rit = held.rbegin(); rit != held.rend(); ++rit) {
                if (rit->var == receiver && !rit->var.empty()) {
                    tracked = &*rit;
                    break;
                }
            }
            if (tracked != nullptr) {
                if (word == "unlock") {
                    tracked->active = false;
                } else {
                    tracked->active = false; // exclude self from held set
                    emit_edges(ctx, held, tracked->name, i);
                    tracked->active = true;
                }
                i = wend;
                continue;
            }
        }
        // CondVar::wait(lockvar[, pred]) — waiting on one mutex while
        // holding another is the blocking-under-lock poster child.
        if (word == "wait" && member_access) {
            const std::size_t close = match_paren(code, after);
            const std::string args = code.substr(after + 1, close - after - 1);
            std::string first = args.substr(0, args.find(','));
            std::size_t fb = 0;
            std::size_t fe = first.size();
            while (fb < fe && !is_ident(first[fb])) { ++fb; }
            while (fe > fb && !is_ident(first[fe - 1])) { --fe; }
            first = first.substr(fb, fe - fb);
            const HeldEntry* lockvar = nullptr;
            for (const auto& entry : held) {
                if (!entry.var.empty() && entry.var == first) {
                    lockvar = &entry;
                    break;
                }
            }
            if (lockvar != nullptr) {
                std::vector<std::string> others;
                for (const std::string& name : active_names(held)) {
                    if (name != lockvar->name) { others.push_back(name); }
                }
                if (!others.empty()) {
                    add_finding(*ctx.findings, *ctx.file, line,
                                "blocking-under-lock",
                                "CondVar::wait on \"" + lockvar->name +
                                    "\" while also holding " +
                                    join_names(others));
                }
                i = wend;
                continue;
            }
        }
        const std::vector<std::string> held_names = active_names(held);
        // Known-blocking calls while a named mutex is held.
        if (!held_names.empty()) {
            static const std::set<std::string> socket_calls = {
                "send", "recv", "accept", "connect", "poll"};
            static const std::set<std::string> blocking_calls = {
                "parallel_for", "execute_run_spec", "sleep_for",
                "sleep_until", "join"};
            if ((global_qualified && socket_calls.count(word) != 0) ||
                (!member_access && !colon_qualified &&
                 blocking_calls.count(word) != 0) ||
                (member_access && blocking_calls.count(word) != 0)) {
                add_finding(*ctx.findings, *ctx.file, line,
                            "blocking-under-lock",
                            "blocking call " +
                                std::string(global_qualified ? "::" : "") +
                                word + "() while holding " +
                                join_names(held_names));
            }
        }
        // Interprocedural resolution.
        std::string key;
        if (member_access) {
            std::string cls;
            if (!receiver.empty()) {
                auto vit = ctx.vars_file->find(receiver);
                if (vit != ctx.vars_file->end()) {
                    cls = vit->second;
                } else if (ctx.vars_global_ambiguous->count(receiver) == 0) {
                    vit = ctx.vars_global->find(receiver);
                    if (vit != ctx.vars_global->end()) { cls = vit->second; }
                }
            }
            if (!cls.empty()) {
                const std::string candidate = cls + "::" + word;
                if (ctx.def_keys->count(candidate) != 0) { key = candidate; }
                // Known receiver type with no matching definition:
                // deliberately NOT falling back to unique-name lookup.
            } else if (stl_like_names().count(word) == 0) {
                const auto bit = ctx.keys_by_bare->find(word);
                if (bit != ctx.keys_by_bare->end() &&
                    bit->second.size() == 1) {
                    key = bit->second.front();
                }
            }
        } else if (colon_qualified) {
            if (!global_qualified && ctx.classes->count(qualifier) != 0) {
                const std::string candidate = qualifier + "::" + word;
                if (ctx.def_keys->count(candidate) != 0) { key = candidate; }
            }
        } else {
            if (!def.cls.empty() &&
                ctx.def_keys->count(def.cls + "::" + word) != 0) {
                key = def.cls + "::" + word;
            } else if (ctx.def_keys->count(word) != 0) {
                key = word;
            } else if (stl_like_names().count(word) == 0) {
                const auto bit = ctx.keys_by_bare->find(word);
                if (bit != ctx.keys_by_bare->end() &&
                    bit->second.size() == 1 &&
                    bit->second.front().find("::") == std::string::npos) {
                    // Free functions only: a plain unqualified call
                    // cannot reach another class's method, and local
                    // declarations (`std::vector<double> start(n);`)
                    // would otherwise resolve to a same-named method
                    // anywhere in the tree.
                    key = bit->second.front();
                }
            }
        }
        if (!key.empty() && key != def.key) {
            if (key == "Pipeline::run" && !held_names.empty()) {
                add_finding(*ctx.findings, *ctx.file, line,
                            "blocking-under-lock",
                            "Pipeline::run() while holding " +
                                join_names(held_names));
            }
            if (summary != nullptr) { summary->calls.insert(key); }
            if (!held_names.empty()) {
                CallSite site;
                site.key = key;
                site.held = held_names;
                site.file = *ctx.file;
                site.line = line;
                ctx.call_sites->push_back(site);
            }
        }
        i = wend;
    }
}

/** Per-file preprocessed state. */
struct FileState
{
    const SourceFile* source = nullptr;
    std::string code;         // strings + comments + preprocessor blanked
    std::string with_strings; // comments blanked only
    LineIndex lines{std::string()};
    std::vector<FunctionDef> defs;
    std::map<std::string, std::string> vars;
};

bool skip_file(const std::string& path)
{
    // The wrappers themselves (and the runtime validator) implement the
    // idiom rather than using it.
    return path.find("thread_safety.hpp") != std::string::npos ||
           path.find("lock_order_check.cpp") != std::string::npos;
}

} // namespace

LockGraph analyze_lock_order(const std::vector<SourceFile>& files)
{
    LockGraph graph;
    std::vector<FileState> states;
    states.reserve(files.size());
    std::set<std::string> classes;
    std::vector<FunctionDef> all_defs;
    std::vector<MutexDecl> all_decls;
    std::map<std::string, std::set<std::string>> requires_idents;

    for (const SourceFile& source : files) {
        if (skip_file(source.path)) { continue; }
        FileState state;
        state.source = &source;
        sanitize(source.text, state.code, state.with_strings);
        blank_preprocessor(state.code);
        state.lines = LineIndex(source.text);
        scan_structure(source.path, state.code, state.lines, state.defs,
                       classes);
        scan_mutex_decls(source.path, state.code, state.with_strings,
                         state.lines, all_decls);
        scan_requires(state.code, requires_idents);
        all_defs.insert(all_defs.end(), state.defs.begin(), state.defs.end());
        states.push_back(std::move(state));
    }

    // Mutex bookkeeping: registered-name conventions plus the
    // ident -> name map used to resolve `MutexLock lk(<expr>)`.
    std::map<std::string, std::string> ident_to_name;
    std::set<std::string> ambiguous_idents;
    std::map<std::string, const MutexDecl*> first_by_name;
    for (const MutexDecl& decl : all_decls) {
        if (decl.name.empty()) {
            if (decl.file.find("src/") != std::string::npos) {
                add_finding(graph.file_findings, decl.file, decl.line,
                            "unnamed-mutex",
                            "cafqa::Mutex '" + decl.ident +
                                "' has no registered name; pass one so the "
                                "lock-order analyzer and runtime validator "
                                "can track it");
            }
            continue;
        }
        if (decl.name != expected_name(decl.ident)) {
            add_finding(graph.file_findings, decl.file, decl.line,
                        "mutex-name-mismatch",
                        "mutex '" + decl.ident + "' registers name \"" +
                            decl.name + "\"; convention is \"" +
                            expected_name(decl.ident) +
                            "\" (identifier minus trailing underscores)");
        }
        const auto named = first_by_name.find(decl.name);
        if (named == first_by_name.end()) {
            first_by_name[decl.name] = &decl;
            graph.mutexes.push_back(decl);
        } else {
            add_finding(graph.file_findings, decl.file, decl.line,
                        "duplicate-mutex",
                        "registered mutex name \"" + decl.name +
                            "\" already declared at " + named->second->file +
                            ":" + std::to_string(named->second->line));
        }
        const auto ident_it = ident_to_name.find(decl.ident);
        if (ident_it == ident_to_name.end()) {
            if (ambiguous_idents.count(decl.ident) == 0) {
                ident_to_name[decl.ident] = decl.name;
            }
        } else if (ident_it->second != decl.name) {
            ident_to_name.erase(ident_it);
            ambiguous_idents.insert(decl.ident);
        }
    }
    std::sort(graph.mutexes.begin(), graph.mutexes.end(),
              [](const MutexDecl& a, const MutexDecl& b) {
                  return a.name < b.name;
              });

    // REQUIRES idents -> registered names.
    std::map<std::string, std::set<std::string>> requires_names;
    for (const auto& [method, idents] : requires_idents) {
        for (const std::string& ident : idents) {
            const auto it = ident_to_name.find(ident);
            if (it != ident_to_name.end()) {
                requires_names[method].insert(it->second);
            }
        }
    }

    // Definition indexes for call resolution.
    std::set<std::string> def_keys;
    std::map<std::string, std::vector<std::string>> keys_by_bare;
    for (const FunctionDef& def : all_defs) {
        if (def_keys.insert(def.key).second) {
            keys_by_bare[def.name].push_back(def.key);
        }
    }

    // Variable typing: per-file maps with a global fallback.
    std::map<std::string, std::string> vars_global;
    std::set<std::string> vars_global_ambiguous;
    for (FileState& state : states) {
        std::set<std::string> file_ambiguous;
        scan_var_classes(state.code, classes, state.vars, file_ambiguous);
        scan_var_classes(state.code, classes, vars_global,
                         vars_global_ambiguous);
    }

    // Walk every body; lambda bodies recurse with a fresh held set.
    std::map<std::string, Summary> summaries;
    std::vector<LockEdge> raw_edges;
    std::vector<CallSite> call_sites;
    for (const FileState& state : states) {
        WalkCtx ctx;
        ctx.code = &state.code;
        ctx.file = &state.source->path;
        ctx.lines = &state.lines;
        ctx.ident_to_name = &ident_to_name;
        ctx.vars_file = &state.vars;
        ctx.vars_global = &vars_global;
        ctx.vars_global_ambiguous = &vars_global_ambiguous;
        ctx.classes = &classes;
        ctx.keys_by_bare = &keys_by_bare;
        ctx.def_keys = &def_keys;
        ctx.edges = &raw_edges;
        ctx.call_sites = &call_sites;
        ctx.findings = &graph.file_findings;
        for (const FunctionDef& def : state.defs) {
            std::vector<HeldEntry> seeds;
            const auto req = requires_names.find(def.name);
            if (req != requires_names.end()) {
                for (const std::string& name : req->second) {
                    HeldEntry seed;
                    seed.name = name;
                    seed.depth = -1;
                    seeds.push_back(seed);
                }
            }
            walk_body(ctx, def, def.body_begin, def.body_end, seeds,
                      &summaries[def.key]);
        }
    }

    // Fixpoint closure: names transitively acquired by each key.
    std::map<std::string, std::set<std::string>> acquires;
    for (const auto& [key, summary] : summaries) {
        acquires[key] = summary.direct;
    }
    for (bool changed = true; changed;) {
        changed = false;
        for (const auto& [key, summary] : summaries) {
            for (const std::string& callee : summary.calls) {
                const auto it = acquires.find(callee);
                if (it == acquires.end()) { continue; }
                for (const std::string& name : it->second) {
                    if (acquires[key].insert(name).second) { changed = true; }
                }
            }
        }
    }

    // Interprocedural edges from call sites.
    for (const CallSite& site : call_sites) {
        const auto it = acquires.find(site.key);
        if (it == acquires.end()) { continue; }
        for (const std::string& from : site.held) {
            for (const std::string& to : it->second) {
                LockEdge edge;
                edge.from = from;
                edge.to = to;
                edge.file = site.file;
                edge.line = site.line;
                edge.via = site.key;
                raw_edges.push_back(edge);
            }
        }
    }

    // Deduplicate by (from, to); direct evidence wins over via-call.
    std::map<std::pair<std::string, std::string>, LockEdge> deduped;
    for (const LockEdge& edge : raw_edges) {
        const auto key = std::make_pair(edge.from, edge.to);
        const auto it = deduped.find(key);
        if (it == deduped.end()) {
            deduped[key] = edge;
        } else if (!it->second.via.empty() && edge.via.empty()) {
            it->second = edge;
        }
    }
    for (const auto& [key, edge] : deduped) { graph.edges.push_back(edge); }
    return graph;
}

namespace {

std::string trim(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
        --e;
    }
    return s.substr(b, e - b);
}

std::string json_escape(const std::string& s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') { out += '\\'; }
        out += c;
    }
    return out;
}

} // namespace

bool parse_lock_manifest(const std::string& text, LockManifest& manifest,
                         std::string& error)
{
    manifest = LockManifest{};
    std::stringstream stream(text);
    std::string raw;
    std::size_t lineno = 0;
    static const std::regex re_mutex(R"(^mutex\s+([A-Za-z_]\w*)$)");
    static const std::regex re_edge(
        R"(^([A-Za-z_]\w*)\s*->\s*([A-Za-z_]\w*)$)");
    static const std::regex re_dynamic(
        R"(^dynamic\s+([A-Za-z_]\w*)\s*->\s*([A-Za-z_]\w*)$)");
    while (std::getline(stream, raw)) {
        ++lineno;
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos) { raw = raw.substr(0, hash); }
        const std::string line = trim(raw);
        if (line.empty()) { continue; }
        std::smatch m;
        if (std::regex_match(line, m, re_mutex)) {
            manifest.mutexes.insert(m[1]);
        } else if (std::regex_match(line, m, re_dynamic)) {
            manifest.dynamic_edges.emplace(m[1], m[2]);
        } else if (std::regex_match(line, m, re_edge)) {
            manifest.static_edges.emplace(m[1], m[2]);
        } else {
            error = "line " + std::to_string(lineno) +
                    ": expected 'mutex NAME', 'A -> B', or "
                    "'dynamic A -> B', got: " +
                    line;
            return false;
        }
    }
    return true;
}

std::string render_lock_manifest(const LockGraph& graph,
                                 const LockManifest* previous)
{
    std::ostringstream out;
    out << "# Lock acquisition-order manifest — a reviewed artifact.\n"
        << "#\n"
        << "# 'mutex NAME' registers a cafqa::Mutex; 'A -> B' records that\n"
        << "# A may be held while B is acquired. 'dynamic A -> B' covers\n"
        << "# orderings behind std::function indirection that the static\n"
        << "# pass cannot see; dynamic edges feed the cycle check and the\n"
        << "# runtime validator but are never reported stale.\n"
        << "#\n"
        << "# Regenerate with:\n"
        << "#   lint_invariants --write-lock-manifest "
           "--lock-manifest=tools/lint/lock_order.manifest <tree>\n"
        << "# and review the diff — a new edge is a new lock-ordering\n"
        << "# commitment.\n\n";
    for (const MutexDecl& decl : graph.mutexes) {
        out << "mutex " << decl.name << "\n";
    }
    out << "\n";
    std::set<std::pair<std::string, std::string>> statics;
    for (const LockEdge& edge : graph.edges) {
        statics.emplace(edge.from, edge.to);
    }
    for (const auto& [from, to] : statics) {
        out << from << " -> " << to << "\n";
    }
    if (previous != nullptr && !previous->dynamic_edges.empty()) {
        out << "\n";
        for (const auto& [from, to] : previous->dynamic_edges) {
            if (statics.count({from, to}) == 0) {
                out << "dynamic " << from << " -> " << to << "\n";
            }
        }
    }
    return out.str();
}

std::vector<Finding> check_lock_manifest(const LockGraph& graph,
                                         const LockManifest& manifest,
                                         const std::string& manifest_path)
{
    std::vector<Finding> findings;
    auto drift = [&](const std::string& file, std::size_t line,
                     const std::string& message) {
        Finding f;
        f.file = file;
        f.line = line;
        f.rule = "lock-order-drift";
        f.message = message;
        findings.push_back(f);
    };
    std::set<std::pair<std::string, std::string>> discovered;
    for (const LockEdge& edge : graph.edges) {
        discovered.emplace(edge.from, edge.to);
        if (manifest.static_edges.count({edge.from, edge.to}) == 0 &&
            manifest.dynamic_edges.count({edge.from, edge.to}) == 0) {
            drift(edge.file, edge.line,
                  "acquisition edge \"" + edge.from + "\" -> \"" + edge.to +
                      "\"" +
                      (edge.via.empty() ? std::string()
                                        : " (via " + edge.via + ")") +
                      " is not in " + manifest_path +
                      "; run --write-lock-manifest and review the diff");
        }
    }
    for (const auto& [from, to] : manifest.static_edges) {
        if (discovered.count({from, to}) == 0) {
            drift(manifest_path, 1,
                  "manifest edge \"" + from + "\" -> \"" + to +
                      "\" is no longer discovered in the tree (stale: "
                      "remove it, or mark it dynamic if it is real but "
                      "behind an indirection)");
        }
    }
    std::set<std::string> declared;
    for (const MutexDecl& decl : graph.mutexes) {
        declared.insert(decl.name);
        if (manifest.mutexes.count(decl.name) == 0) {
            drift(decl.file, decl.line,
                  "mutex \"" + decl.name + "\" (declared here) is missing "
                                           "from " +
                      manifest_path);
        }
    }
    for (const std::string& name : manifest.mutexes) {
        if (declared.count(name) == 0) {
            drift(manifest_path, 1,
                  "manifest mutex \"" + name +
                      "\" is not declared anywhere in the tree");
        }
    }
    auto check_endpoints = [&](const std::pair<std::string, std::string>& e,
                               const char* kind) {
        for (const std::string* name : {&e.first, &e.second}) {
            if (manifest.mutexes.count(*name) == 0) {
                drift(manifest_path, 1,
                      std::string(kind) + " edge \"" + e.first + "\" -> \"" +
                          e.second + "\" references mutex \"" + *name +
                          "\" with no 'mutex' line");
            }
        }
    };
    for (const auto& e : manifest.static_edges) {
        check_endpoints(e, "manifest");
    }
    for (const auto& e : manifest.dynamic_edges) {
        check_endpoints(e, "dynamic");
    }
    return findings;
}

std::vector<Finding> find_lock_cycles(const LockGraph& graph,
                                      const LockManifest* manifest)
{
    std::map<std::pair<std::string, std::string>, const LockEdge*> evidence;
    std::map<std::string, std::set<std::string>> adj;
    for (const LockEdge& edge : graph.edges) {
        if (edge.from == edge.to) { continue; } // self-edge reported below
        adj[edge.from].insert(edge.to);
        evidence[{edge.from, edge.to}] = &edge;
    }
    if (manifest != nullptr) {
        for (const auto& edges :
             {manifest->static_edges, manifest->dynamic_edges}) {
            for (const auto& [from, to] : edges) {
                if (from != to) { adj[from].insert(to); }
            }
        }
    }
    std::vector<Finding> findings;
    auto describe = [&](const std::vector<std::string>& cycle) {
        std::string message = "lock-order cycle: ";
        const LockEdge* first_evidence = nullptr;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            const std::string& from = cycle[i];
            const std::string& to = cycle[(i + 1) % cycle.size()];
            const auto it = evidence.find({from, to});
            message += "\"" + from + "\" -> \"" + to + "\" (";
            if (it != evidence.end()) {
                message += it->second->file + ":" +
                           std::to_string(it->second->line);
                if (!it->second->via.empty()) {
                    message += " via " + it->second->via;
                }
                if (first_evidence == nullptr) {
                    first_evidence = it->second;
                }
            } else {
                message += "manifest";
            }
            message += ")";
            if (i + 1 < cycle.size()) { message += ", "; }
        }
        Finding f;
        f.file = first_evidence != nullptr ? first_evidence->file
                                           : std::string("lock-order");
        f.line = first_evidence != nullptr ? first_evidence->line : 1;
        f.rule = "lock-cycle";
        f.message = message;
        findings.push_back(f);
    };
    // Self-edges are degenerate cycles (a relock hazard).
    for (const LockEdge& edge : graph.edges) {
        if (edge.from == edge.to) { describe({edge.from}); }
    }
    // Each cycle is reported rooted at its lexicographically smallest
    // node: DFS from each start, visiting only nodes >= start.
    std::set<std::string> reported;
    for (const auto& [start, unused] : adj) {
        (void)unused;
        std::vector<std::string> path = {start};
        std::set<std::string> on_path = {start};
        std::function<void(const std::string&)> dfs =
            [&](const std::string& node) {
                const auto it = adj.find(node);
                if (it == adj.end()) { return; }
                for (const std::string& next : it->second) {
                    if (next == start) {
                        std::string sig;
                        for (const auto& n : path) { sig += n + "|"; }
                        if (reported.insert(sig).second) { describe(path); }
                        continue;
                    }
                    if (next < start || on_path.count(next) != 0) {
                        continue;
                    }
                    path.push_back(next);
                    on_path.insert(next);
                    dfs(next);
                    on_path.erase(next);
                    path.pop_back();
                }
            };
        dfs(start);
    }
    return findings;
}

std::string lock_graph_dot(const LockGraph& graph,
                           const LockManifest* manifest)
{
    std::ostringstream out;
    out << "digraph lock_order {\n"
        << "  rankdir=LR;\n"
        << "  node [shape=box, fontname=\"monospace\"];\n";
    std::set<std::string> nodes;
    for (const MutexDecl& decl : graph.mutexes) { nodes.insert(decl.name); }
    std::set<std::pair<std::string, std::string>> discovered;
    for (const LockEdge& edge : graph.edges) {
        discovered.emplace(edge.from, edge.to);
        nodes.insert(edge.from);
        nodes.insert(edge.to);
    }
    if (manifest != nullptr) {
        for (const auto& [from, to] : manifest->dynamic_edges) {
            nodes.insert(from);
            nodes.insert(to);
        }
    }
    for (const std::string& node : nodes) {
        out << "  \"" << node << "\";\n";
    }
    for (const LockEdge& edge : graph.edges) {
        out << "  \"" << edge.from << "\" -> \"" << edge.to << "\"";
        if (!edge.via.empty()) {
            out << " [label=\"" << edge.via << "\"]";
        }
        out << ";\n";
    }
    if (manifest != nullptr) {
        for (const auto& [from, to] : manifest->dynamic_edges) {
            if (discovered.count({from, to}) == 0) {
                out << "  \"" << from << "\" -> \"" << to
                    << "\" [style=dashed, label=\"dynamic\"];\n";
            }
        }
    }
    out << "}\n";
    return out.str();
}

std::string lock_graph_json(const LockGraph& graph)
{
    std::ostringstream out;
    out << "{\n  \"mutexes\": [";
    for (std::size_t i = 0; i < graph.mutexes.size(); ++i) {
        const MutexDecl& decl = graph.mutexes[i];
        out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
            << json_escape(decl.name) << "\", \"file\": \""
            << json_escape(decl.file) << "\", \"line\": " << decl.line << "}";
    }
    out << "\n  ],\n  \"edges\": [";
    for (std::size_t i = 0; i < graph.edges.size(); ++i) {
        const LockEdge& edge = graph.edges[i];
        out << (i == 0 ? "\n" : ",\n") << "    {\"from\": \""
            << json_escape(edge.from) << "\", \"to\": \""
            << json_escape(edge.to) << "\", \"file\": \""
            << json_escape(edge.file) << "\", \"line\": " << edge.line
            << ", \"via\": \"" << json_escape(edge.via) << "\"}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

} // namespace cafqa::lint
