#include "lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace cafqa::lint {
namespace {

bool
is_ident(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * Replace comment bodies and string/char literal contents (delimiters
 * included) with spaces, preserving newlines so offsets keep mapping
 * to the original lines. Handles //, block comments, escapes, digit
 * separators (1'000) and R"delim(...)delim" raw strings.
 */
std::string
blank_comments_and_strings(const std::string& text)
{
    std::string out = text;
    enum class State { Code, Line, Block, Str, Chr, Raw };
    State state = State::Code;
    std::string raw_close; // ")delim\"" that ends the raw string
    for (std::size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const char next = i + 1 < out.size() ? out[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::Line;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::Block;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                const bool raw = i > 0 && out[i - 1] == 'R' &&
                                 (i < 2 || !is_ident(out[i - 2]));
                if (raw) {
                    raw_close = ")";
                    for (std::size_t j = i + 1;
                         j < out.size() && out[j] != '('; ++j) {
                        raw_close += out[j];
                    }
                    raw_close += '"';
                    state = State::Raw;
                } else {
                    state = State::Str;
                }
                out[i] = ' ';
            } else if (c == '\'') {
                // A quote straight after an identifier/digit character
                // is a digit separator (1'000), not a char literal.
                if (i == 0 || !is_ident(out[i - 1])) {
                    state = State::Chr;
                }
                out[i] = ' ';
            }
            break;
          case State::Line:
            if (c == '\n') {
                state = State::Code;
            } else {
                out[i] = ' ';
            }
            break;
          case State::Block:
            if (c == '*' && next == '/') {
                out[i] = out[i + 1] = ' ';
                ++i;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Str:
          case State::Chr:
            if (c == '\\') {
                out[i] = ' ';
                if (next != '\0' && next != '\n') {
                    out[i + 1] = ' ';
                    ++i;
                }
            } else if ((state == State::Str && c == '"') ||
                       (state == State::Chr && c == '\'')) {
                out[i] = ' ';
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Raw:
            if (c == raw_close[0] &&
                out.compare(i, raw_close.size(), raw_close) == 0) {
                for (std::size_t j = 0; j < raw_close.size(); ++j) {
                    out[i + j] = ' ';
                }
                i += raw_close.size() - 1;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
split_lines(const std::string& text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

/** 1-based line number of `offset` in `text`. */
std::size_t
line_of(const std::string& text, std::size_t offset)
{
    return 1 + static_cast<std::size_t>(
                   std::count(text.begin(),
                              text.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      std::min(offset, text.size())),
                              '\n'));
}

std::string
trim(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

bool
path_contains(const std::string& path, const std::string& piece)
{
    return path.find(piece) != std::string::npos;
}

struct Allow
{
    std::string rule;
    bool used = false;
};

/**
 * Parse `lint:allow(<rule>) <reason>` comment directives from the RAW
 * text (they live inside line comments, which the sanitizer blanks).
 * A malformed directive becomes a `bad-allow` finding immediately.
 */
std::map<std::size_t, std::vector<Allow>>
collect_allows(const std::string& path,
               const std::vector<std::string>& raw_lines,
               std::vector<Finding>& findings)
{
    static const std::string kTag = "lint:allow(";
    const std::set<std::string> known(rule_names().begin(),
                                      rule_names().end());
    std::map<std::size_t, std::vector<Allow>> allows;
    for (std::size_t n = 0; n < raw_lines.size(); ++n) {
        const std::string& line = raw_lines[n];
        // Directives live in `//` comments only: a mention inside a
        // string literal or a block-comment prose paragraph (the
        // linter's own sources talk about the syntax) is not one.
        const std::size_t comment = line.find("//");
        if (comment == std::string::npos) {
            continue;
        }
        std::size_t pos = comment;
        while ((pos = line.find(kTag, pos)) != std::string::npos) {
            const std::size_t open = pos + kTag.size();
            const std::size_t close = line.find(')', open);
            pos = open;
            if (close == std::string::npos) {
                findings.push_back({path, n + 1, "bad-allow",
                                    "unterminated lint:allow directive"});
                continue;
            }
            const std::string rule = trim(line.substr(open, close - open));
            const std::string reason = trim(line.substr(close + 1));
            if (known.count(rule) == 0) {
                findings.push_back({path, n + 1, "bad-allow",
                                    "lint:allow names unknown rule '" +
                                        rule + "'"});
                continue;
            }
            if (reason.empty()) {
                findings.push_back(
                    {path, n + 1, "bad-allow",
                     "lint:allow(" + rule +
                         ") needs a reason after the closing paren"});
                continue;
            }
            allows[n + 1].push_back({rule, false});
        }
    }
    return allows;
}

void
check_line_rules(const std::string& path,
                 const std::vector<std::string>& lines,
                 std::vector<Finding>& findings)
{
    static const std::regex rng_re(
        R"(\b(srand|rand)\s*\(|\brandom_device\b)");
    // The negative lookahead keeps `std::thread::hardware_concurrency()`
    // (a query, not a spawn) out of the rule.
    static const std::regex thread_re(R"(\bstd\s*::\s*j?thread\b(?!\s*::))");
    static const std::regex mutex_re(
        R"(\bstd\s*::\s*((recursive_|timed_|recursive_timed_|shared_|shared_timed_)?mutex|condition_variable(_any)?)\b)");
    static const std::regex wall_clock_re(R"(\bsystem_clock\b)");

    // tests/ spawn raw threads on purpose (contention and shutdown
    // scenarios need unmanaged threads the pool would serialize).
    const bool thread_exempt = path_contains(path, "common/thread_pool.") ||
                               path_contains(path, "server/") ||
                               path_contains(path, "tests/");
    const bool mutex_exempt = path_contains(path, "thread_safety.hpp");
    // Wall-clock reads are fine where the point IS wall time: the
    // telemetry subsystem's sanctioned timestamp helper and benchmark
    // harnesses. Path-exact on purpose: a file merely mentioning
    // telemetry in its name (or including the header) earns no
    // exemption — it must call telemetry::wall_timestamp_seconds().
    const bool wall_clock_exempt = path_contains(path, "src/telemetry/") ||
                                   path_contains(path, "bench/");

    for (std::size_t n = 0; n < lines.size(); ++n) {
        const std::string& line = lines[n];
        if (std::regex_search(line, rng_re)) {
            findings.push_back(
                {path, n + 1, "unseeded-rng",
                 "rand()/srand()/std::random_device bypass the seeded "
                 "RNG plumbing; use cafqa's Rng so runs replay"});
        }
        if (!thread_exempt && std::regex_search(line, thread_re)) {
            findings.push_back(
                {path, n + 1, "raw-thread",
                 "raw std::thread outside thread_pool/server; use "
                 "ThreadPool so shutdown and error plumbing apply"});
        }
        if (!mutex_exempt && std::regex_search(line, mutex_re)) {
            findings.push_back(
                {path, n + 1, "naked-mutex",
                 "naked std::mutex/condition_variable; use the "
                 "annotated cafqa::Mutex/CondVar wrappers "
                 "(common/thread_safety.hpp) so -Wthread-safety "
                 "sees the lock"});
        }
        if (!wall_clock_exempt && std::regex_search(line, wall_clock_re)) {
            findings.push_back(
                {path, n + 1, "wall-clock-in-logic",
                 "system_clock in logic makes behaviour depend on wall "
                 "time; use steady_clock for durations, or move "
                 "timestamping into telemetry"});
        }
    }
}

/**
 * Names declared with an unordered container type. Heuristic: find
 * `unordered_map<...>` (and set/multi variants), angle-match to the
 * closing `>`, and take the identifier that follows (skipping
 * whitespace) as the declared variable. Declarations split across
 * lines and trailing attribute macros both work; `using` aliases are
 * not chased (the alias name is not an identifier-after-`>`).
 */
std::set<std::string>
unordered_names_in_code(const std::string& code)
{
    static const std::regex decl_re(
        R"(\bunordered_(map|set|multimap|multiset)\s*<)");
    std::set<std::string> names;
    for (auto it = std::sregex_iterator(code.begin(), code.end(), decl_re);
         it != std::sregex_iterator(); ++it) {
        std::size_t i =
            static_cast<std::size_t>(it->position() + it->length());
        int depth = 1;
        while (i < code.size() && depth > 0) {
            if (code[i] == '<') {
                ++depth;
            } else if (code[i] == '>' && code[i - 1] != '-') {
                --depth;
            }
            ++i;
        }
        while (i < code.size() &&
               std::isspace(static_cast<unsigned char>(code[i]))) {
            ++i;
        }
        std::string name;
        while (i < code.size() && is_ident(code[i])) {
            name += code[i++];
        }
        if (!name.empty() &&
            !std::isdigit(static_cast<unsigned char>(name[0]))) {
            names.insert(name);
        }
    }
    return names;
}

void
check_unordered_iteration(const std::string& path, const std::string& code,
                          const std::set<std::string>& cross_file_unordered,
                          std::vector<Finding>& findings)
{
    std::set<std::string> names = unordered_names_in_code(code);
    // Cross-file names exist for the header-declares / cpp-iterates
    // split, which only concerns class members — so only take the
    // member-style ones (trailing '_'). Unsuffixed locals like `seen`
    // would otherwise collide across unrelated files.
    for (const std::string& name : cross_file_unordered) {
        if (!name.empty() && name.back() == '_') {
            names.insert(name);
        }
    }
    if (names.empty()) {
        return;
    }
    static const std::regex for_re(R"(\bfor\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), for_re);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open =
            static_cast<std::size_t>(it->position() + it->length()) - 1;
        // Find the range-for ':' at paren depth 1 (":" but not "::").
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t close = std::string::npos;
        for (std::size_t i = open; i < code.size(); ++i) {
            const char c = code[i];
            if (c == '(' || c == '[' || c == '{') {
                ++depth;
            } else if (c == ')' || c == ']' || c == '}') {
                --depth;
                if (depth == 0) {
                    close = i;
                    break;
                }
            } else if (c == ':' && depth == 1 &&
                       (i + 1 >= code.size() || code[i + 1] != ':') &&
                       (i == 0 || code[i - 1] != ':')) {
                if (colon == std::string::npos) {
                    colon = i;
                }
            }
        }
        if (colon == std::string::npos || close == std::string::npos) {
            continue; // classic for loop (or unparsable)
        }
        const std::string range =
            code.substr(colon + 1, close - colon - 1);
        // The identifier actually iterated is the last one in the
        // range expression (`jobs_`, `r.factories`, `this->index_`).
        std::string last;
        std::string current;
        for (const char c : range) {
            if (is_ident(c)) {
                current += c;
            } else {
                if (!current.empty()) {
                    last = current;
                }
                current.clear();
            }
        }
        if (!current.empty()) {
            last = current;
        }
        if (!last.empty() && names.count(last) > 0) {
            findings.push_back(
                {path, line_of(code, static_cast<std::size_t>(it->position())),
                 "unordered-iter",
                 "range-for over unordered container '" + last +
                     "'; iteration order is unspecified, so loops that "
                     "feed serialization or output are nondeterministic "
                     "- iterate a sorted view instead"});
        }
    }
}

void
check_catch_swallow(const std::string& path, const std::string& code,
                    std::vector<Finding>& findings)
{
    static const std::regex catch_re(R"(\bcatch\s*\(\s*\.\.\.\s*\)\s*\{)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), catch_re);
         it != std::sregex_iterator(); ++it) {
        const std::size_t brace =
            static_cast<std::size_t>(it->position() + it->length()) - 1;
        int depth = 0;
        std::size_t end = code.size();
        for (std::size_t i = brace; i < code.size(); ++i) {
            if (code[i] == '{') {
                ++depth;
            } else if (code[i] == '}') {
                if (--depth == 0) {
                    end = i;
                    break;
                }
            }
        }
        const std::string body = code.substr(brace + 1, end - brace - 1);
        static const std::regex handled_re(
            R"(\bthrow\b|current_exception)");
        if (!std::regex_search(body, handled_re)) {
            findings.push_back(
                {path, line_of(code, static_cast<std::size_t>(it->position())),
                 "catch-swallow",
                 "catch (...) neither rethrows nor records the error "
                 "(no throw/current_exception in the handler); "
                 "swallowed exceptions hide worker crashes"});
        }
    }
}

} // namespace

const std::vector<std::string>&
rule_names()
{
    static const std::vector<std::string> kRules = {
        "unseeded-rng",        "raw-thread",
        "unordered-iter",      "naked-mutex",
        "catch-swallow",       "wall-clock-in-logic",
        "blocking-under-lock", "unnamed-mutex",
        "mutex-name-mismatch", "duplicate-mutex",
    };
    return kRules;
}

std::set<std::string>
unordered_container_names(const std::string& text)
{
    return unordered_names_in_code(blank_comments_and_strings(text));
}

FileReport
lint_source(const std::string& display_path, const std::string& text,
            const std::set<std::string>& cross_file_unordered,
            const std::vector<Finding>& extra_candidates)
{
    FileReport report;
    const std::vector<std::string> raw_lines = split_lines(text);
    auto allows = collect_allows(display_path, raw_lines, report.findings);

    const std::string code = blank_comments_and_strings(text);
    const std::vector<std::string> code_lines = split_lines(code);

    std::vector<Finding> candidates = extra_candidates;
    check_line_rules(display_path, code_lines, candidates);
    check_unordered_iteration(display_path, code, cross_file_unordered,
                              candidates);
    check_catch_swallow(display_path, code, candidates);

    // Resolve each allow to the line it suppresses: a trailing allow
    // (code before the comment) covers its own line; an allow on a
    // comment-only line covers the next line that has code, so a
    // reason may wrap over several comment lines.
    const auto blank = [&code_lines](std::size_t line) {
        return line > code_lines.size() ||
               trim(code_lines[line - 1]).empty();
    };
    std::map<std::size_t, std::vector<Allow>> targeted;
    for (auto& [line, allow_list] : allows) {
        std::size_t target = line;
        if (blank(target)) {
            do {
                ++target;
            } while (target <= code_lines.size() && blank(target));
        }
        auto& bucket = targeted[target];
        bucket.insert(bucket.end(), allow_list.begin(), allow_list.end());
    }

    for (Finding& finding : candidates) {
        bool suppressed = false;
        auto it = targeted.find(finding.line);
        if (it != targeted.end()) {
            for (Allow& allow : it->second) {
                if (allow.rule == finding.rule) {
                    allow.used = true;
                    suppressed = true;
                    break;
                }
            }
        }
        if (suppressed) {
            ++report.allows_used;
        } else {
            report.findings.push_back(std::move(finding));
        }
    }
    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return a.line < b.line ||
                         (a.line == b.line && a.rule < b.rule);
              });
    return report;
}

FileReport
lint_file(const std::string& path,
          const std::set<std::string>& cross_file_unordered)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        FileReport report;
        report.findings.push_back(
            {path, 0, "io-error", "cannot open file"});
        return report;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lint_source(path, buffer.str(), cross_file_unordered);
}

std::map<std::string, std::size_t>
rule_hits(const std::vector<Finding>& findings)
{
    std::map<std::string, std::size_t> hits;
    for (const Finding& finding : findings) {
        ++hits[finding.rule];
    }
    return hits;
}

} // namespace cafqa::lint
