/**
 * @file
 * Lock-order analysis pass for the CAFQA tree.
 *
 * A lexical (non-semantic) scanner over the PR 8 locking idioms —
 * `MutexLock lk(<ident>)` scopes with the unlock()/relock() dance,
 * `*_locked()` helpers carrying `CAFQA_REQUIRES(<ident>)`, and
 * `CondVar::wait(lk)` — that computes, per function and then
 * interprocedurally across translation units, the set of ACQUISITION
 * EDGES: registered mutex name A held at the point where B is
 * acquired (directly or transitively through a called function).
 *
 * The discovered graph is
 *  - emitted as DOT and JSON for review/CI artifacts,
 *  - checked for cycles (each edge of a cycle is reported with its
 *    file:line evidence, so both endpoints of an inversion are named),
 *  - and diffed against the committed manifest
 *    `tools/lint/lock_order.manifest`: a new edge, a removed mutex, a
 *    stale manifest edge, or any cycle is a lint finding, making the
 *    acquisition order a reviewed, versioned artifact.
 *
 * The manifest also accepts `dynamic A -> B` lines for orderings that
 * reach the analyzer's blind spot — acquisitions behind a
 * `std::function` indirection (observer/progress callbacks). Dynamic
 * edges participate in the cycle check and in the runtime validator's
 * table but are never reported stale.
 *
 * The same scope tracking powers the `blocking-under-lock` rule (no
 * socket I/O, `parallel_for`/`execute_run_spec` fan-out, sleeps, or
 * `CondVar::wait` on a DIFFERENT mutex while a named mutex is held);
 * those findings are per-file and honour `lint:allow`. Graph-level
 * findings (cycles, manifest drift) are NOT suppressible — the
 * manifest itself is the reviewed escape hatch.
 */
#ifndef CAFQA_TOOLS_LINT_LOCK_ORDER_HPP
#define CAFQA_TOOLS_LINT_LOCK_ORDER_HPP

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/linter.hpp"

namespace cafqa::lint {

/** One input buffer (path labels findings and drives exemptions). */
struct SourceFile
{
    std::string path;
    std::string text;
};

/** One `cafqa::Mutex` declaration. */
struct MutexDecl
{
    /** Registered name (constructor string literal); empty = unnamed. */
    std::string name;
    /** Declared identifier. */
    std::string ident;
    std::string file;
    std::size_t line = 0;
};

/** Acquisition edge: `from` held while `to` is acquired. */
struct LockEdge
{
    std::string from;
    std::string to;
    /** Evidence: the acquisition (or call) site. */
    std::string file;
    std::size_t line = 0;
    /** Interprocedural witness ("Class::method" whose body acquires
     *  `to`); empty for a direct acquisition. */
    std::string via;
};

/** The discovered lock graph plus per-file rule findings. */
struct LockGraph
{
    /** Named declarations, deduplicated by name, sorted. */
    std::vector<MutexDecl> mutexes;
    /** Deduplicated by (from, to), first evidence kept, sorted. */
    std::vector<LockEdge> edges;
    /** Per-file suppressible findings (blocking-under-lock,
     *  unnamed-mutex, mutex-name-mismatch, duplicate-mutex), keyed by
     *  path — the driver routes them through the file's `lint:allow`
     *  resolution. */
    std::map<std::string, std::vector<Finding>> file_findings;
};

/** Run the pass over `files` (one coherent tree: cross-file summaries
 *  and mutex names are resolved over the whole set). */
LockGraph analyze_lock_order(const std::vector<SourceFile>& files);

/** Parsed `lock_order.manifest`. */
struct LockManifest
{
    std::set<std::string> mutexes;
    std::set<std::pair<std::string, std::string>> static_edges;
    std::set<std::pair<std::string, std::string>> dynamic_edges;
};

/** Parse manifest text. Returns false (with `error` set) on a
 *  malformed line. */
bool parse_lock_manifest(const std::string& text, LockManifest& manifest,
                         std::string& error);

/** Render the graph as a manifest, carrying forward the dynamic edges
 *  of `previous` (pass nullptr for none). */
std::string render_lock_manifest(const LockGraph& graph,
                                 const LockManifest* previous);

/** Drift findings: discovered edge missing from the manifest, stale
 *  manifest edge, unnamed/unknown mutex bookkeeping. Not suppressible. */
std::vector<Finding> check_lock_manifest(const LockGraph& graph,
                                         const LockManifest& manifest,
                                         const std::string& manifest_path);

/** Cycle findings over discovered ∪ manifest edges, every edge of the
 *  cycle named with its evidence. Pass nullptr to check the discovered
 *  graph alone. Not suppressible. */
std::vector<Finding> find_lock_cycles(const LockGraph& graph,
                                      const LockManifest* manifest);

/** Graphviz rendering (manifest-only dynamic edges dashed). */
std::string lock_graph_dot(const LockGraph& graph,
                           const LockManifest* manifest);

/** JSON rendering ({"mutexes": [...], "edges": [...]}). */
std::string lock_graph_json(const LockGraph& graph);

} // namespace cafqa::lint

#endif // CAFQA_TOOLS_LINT_LOCK_ORDER_HPP
